//! Per-request bandwidth provisioning for the simulator.
//!
//! [`BandwidthProvider`] owns the network state of one simulation run: the
//! per-object path averages (drawn from the NLANR-like base distribution of
//! Figure 2) plus, per [`BandwidthModel`], either an i.i.d. ratio stream or
//! one pre-generated AR(1) [`BandwidthTimeSeries`] per path, sampled at
//! request time from the simulation clock. [`EstimatorBank`] maintains the
//! per-path [`sc_netmodel::BandwidthEstimator`] state that stands between
//! the true bandwidth and what the caching algorithm gets to see.

use crate::config::{BandwidthModel, EstimatorKind, VariabilityKind};
use rand::Rng;
use sc_netmodel::{
    BandwidthEstimator, BandwidthTimeSeries, EwmaEstimator, NlanrBandwidthModel, PathSet,
    TimeSeriesConfig, VariabilityModel, WindowedEstimator,
};

/// Supplies the simulator with per-object average bandwidths and per-request
/// instantaneous bandwidth samples.
///
/// Matches the methodology of Section 4.3 of the paper: every object's
/// origin server is reached over a path whose *average* bandwidth is drawn
/// from the NLANR-like distribution of Figure 2. How a request's
/// *instantaneous* bandwidth relates to that average depends on the
/// [`BandwidthModel`]:
///
/// * [`BandwidthModel::Iid`] — each request multiplies the average by an
///   independent ratio drawn from the configured variability model;
/// * [`BandwidthModel::Ar1`] — each path carries a mean-reverting
///   [`BandwidthTimeSeries`] spanning the whole trace, and a request
///   observes the series value at its arrival time.
#[derive(Debug, Clone)]
pub struct BandwidthProvider {
    paths: PathSet,
    variability: VariabilityModel,
    /// One series per path in AR(1) mode; `None` in i.i.d. mode.
    series: Option<Vec<BandwidthTimeSeries>>,
}

impl BandwidthProvider {
    /// Generates i.i.d.-mode bandwidth state for `objects` objects.
    ///
    /// Path averages are drawn from the paper-default NLANR model using
    /// `rng`; per-request variation follows `kind`.
    pub fn generate<R: Rng + ?Sized>(objects: usize, kind: VariabilityKind, rng: &mut R) -> Self {
        Self::generate_with_model(objects, kind, BandwidthModel::Iid, 0.0, rng)
    }

    /// Generates bandwidth state for `objects` objects under an explicit
    /// [`BandwidthModel`].
    ///
    /// In AR(1) mode every path gets a time series covering `horizon_secs`
    /// of simulated time (the arrival time of the last request): the path's
    /// NLANR-drawn average becomes the series mean, the marginal coefficient
    /// of variation comes from `kind`, and the temporal parameters from the
    /// model. In i.i.d. mode this is exactly [`BandwidthProvider::generate`]
    /// — `horizon_secs` is ignored and no extra random draws are consumed,
    /// which keeps the golden metrics bit-stable.
    ///
    /// # Panics
    ///
    /// Panics if the AR(1) parameters are invalid; validate the simulation
    /// configuration first (as [`crate::SimWorker`] does).
    pub fn generate_with_model<R: Rng + ?Sized>(
        objects: usize,
        kind: VariabilityKind,
        model: BandwidthModel,
        horizon_secs: f64,
        rng: &mut R,
    ) -> Self {
        let variability = kind.model();
        let paths = PathSet::generate(
            objects,
            &NlanrBandwidthModel::paper_default(),
            variability.clone(),
            rng,
        );
        let series = match model {
            BandwidthModel::Iid => None,
            BandwidthModel::Ar1 {
                autocorrelation,
                interval_secs,
            } => {
                let samples = (horizon_secs.max(0.0) / interval_secs) as usize + 1;
                let cov = variability.coefficient_of_variation();
                Some(
                    paths
                        .iter()
                        .map(|path| {
                            let cfg = TimeSeriesConfig {
                                mean_bps: path.mean_bps(),
                                cov,
                                autocorrelation,
                                interval_secs,
                                ..TimeSeriesConfig::default()
                            };
                            BandwidthTimeSeries::generate(&cfg, samples, rng)
                                .expect("validated AR(1) parameters")
                        })
                        .collect(),
                )
            }
        };
        BandwidthProvider {
            paths,
            variability,
            series,
        }
    }

    /// Builds an i.i.d.-mode provider from an explicit path set and
    /// variability model (used by tests and ablations).
    pub fn from_parts(paths: PathSet, variability: VariabilityModel) -> Self {
        BandwidthProvider {
            paths,
            variability,
            series: None,
        }
    }

    /// Number of paths (== number of objects).
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Returns `true` if the provider holds no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The average bandwidth of the path to object `index`, i.e. what a
    /// measurement-based estimator would report to the caching algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn estimated_bps(&self, index: usize) -> f64 {
        self.paths.mean_bps(index)
    }

    /// The instantaneous bandwidth observed by one request for object
    /// `index`, ignoring any time-varying state (an i.i.d. draw).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn instantaneous_bps<R: Rng + ?Sized>(&self, index: usize, rng: &mut R) -> f64 {
        self.paths.bandwidth_sample(index, rng)
    }

    /// The instantaneous bandwidth observed by a request for object `index`
    /// arriving at `time_secs` on the simulation clock.
    ///
    /// In i.i.d. mode this draws an independent sample through `rng`
    /// (identically to [`instantaneous_bps`](Self::instantaneous_bps)); in
    /// AR(1) mode it reads the path's time series at `time_secs` and
    /// consumes no randomness.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn request_bps<R: Rng + ?Sized>(&self, index: usize, time_secs: f64, rng: &mut R) -> f64 {
        match &self.series {
            None => self.paths.bandwidth_sample(index, rng),
            Some(series) => series[index].bandwidth_at(time_secs),
        }
    }

    /// The bottleneck capacity of the path to object `index` at `time_secs`
    /// on the simulation clock — the quantity the session-mode
    /// processor-sharing model divides among concurrent sessions.
    ///
    /// Consumes no randomness: in i.i.d. mode the capacity is the path's
    /// long-run mean (the marginal ratio stream models per-request noise,
    /// which has no meaning for a shared fluid link), and in AR(1) mode it
    /// reads the path's time series at `time_secs`. The session core
    /// samples this only at path events (arrivals and departures), a
    /// piecewise-constant approximation of the series between events.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn capacity_bps(&self, index: usize, time_secs: f64) -> f64 {
        match &self.series {
            None => self.paths.mean_bps(index),
            Some(series) => series[index].bandwidth_at(time_secs),
        }
    }

    /// Returns `true` when bandwidth evolves over simulated time (AR(1)
    /// mode) rather than being redrawn independently per request.
    pub fn is_time_varying(&self) -> bool {
        self.series.is_some()
    }

    /// The AR(1) series of path `index`, or `None` in i.i.d. mode.
    pub fn series(&self, index: usize) -> Option<&BandwidthTimeSeries> {
        self.series.as_ref().map(|s| &s[index])
    }

    /// The variability model in use.
    pub fn variability(&self) -> &VariabilityModel {
        &self.variability
    }

    /// The underlying path set.
    pub fn paths(&self) -> &PathSet {
        &self.paths
    }
}

/// Per-path bandwidth-estimator state for one simulation run.
///
/// The bank turns an [`EstimatorKind`] into what the caching algorithm
/// actually sees on each access: the oracle long-run mean, a passive
/// (EWMA / windowed) estimate fed by the throughput of completed transfers,
/// or a fresh active probe of the current bandwidth. Passive estimators
/// fall back to the oracle mean until their first observation, matching the
/// paper's proxies falling back to a default before the first transfer
/// completes.
#[derive(Debug, Clone)]
pub struct EstimatorBank {
    slots: Slots,
}

#[derive(Debug, Clone)]
enum Slots {
    /// No state: always report the long-run mean.
    Oracle,
    Ewma(Vec<EwmaEstimator>),
    Windowed(Vec<WindowedEstimator>),
    /// No state either: a probe is a fresh measurement of the current
    /// bandwidth, so only the newest value — which the caller already has
    /// in hand — would ever be read (cf. [`sc_netmodel::ProbeEstimator`]).
    Probe,
}

impl EstimatorBank {
    /// Creates estimator state for `objects` paths.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (zero window); validate the
    /// configuration first.
    pub fn new(kind: EstimatorKind, objects: usize) -> Self {
        let slots = match kind {
            EstimatorKind::Oracle => Slots::Oracle,
            EstimatorKind::Ewma { alpha } => Slots::Ewma(vec![EwmaEstimator::new(alpha); objects]),
            EstimatorKind::Windowed { window } => {
                Slots::Windowed(vec![WindowedEstimator::new(window); objects])
            }
            EstimatorKind::Probe => Slots::Probe,
        };
        EstimatorBank { slots }
    }

    /// The bandwidth estimate the caching algorithm uses for a request to
    /// object `index`: `oracle_bps` is the path's long-run mean (the
    /// fallback) and `current_bps` the true instantaneous bandwidth this
    /// request will experience (what an active probe measures).
    pub fn decision_bps(&mut self, index: usize, oracle_bps: f64, current_bps: f64) -> f64 {
        match &mut self.slots {
            Slots::Oracle => oracle_bps,
            Slots::Ewma(slots) => slots[index].estimate_bps().unwrap_or(oracle_bps),
            Slots::Windowed(slots) => slots[index].estimate_bps().unwrap_or(oracle_bps),
            Slots::Probe => current_bps,
        }
    }

    /// Records the realised throughput of a completed transfer to object
    /// `index` — the input of the passive estimators. Active probing
    /// ignores it (it already measured the path in
    /// [`decision_bps`](Self::decision_bps)).
    pub fn observe_transfer(&mut self, index: usize, throughput_bps: f64) {
        match &mut self.slots {
            Slots::Oracle | Slots::Probe => {}
            Slots::Ewma(slots) => slots[index].observe(throughput_bps),
            Slots::Windowed(slots) => slots[index].observe(throughput_bps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_variability_matches_estimate() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = BandwidthProvider::generate(50, VariabilityKind::Constant, &mut rng);
        assert_eq!(p.len(), 50);
        assert!(!p.is_empty());
        for i in 0..50 {
            let est = p.estimated_bps(i);
            let inst = p.instantaneous_bps(i, &mut rng);
            assert!((est - inst).abs() < 1e-9);
        }
    }

    #[test]
    fn variable_bandwidth_deviates_from_estimate() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = BandwidthProvider::generate(20, VariabilityKind::NlanrLike, &mut rng);
        let mut any_deviation = false;
        for i in 0..20 {
            let est = p.estimated_bps(i);
            let inst = p.instantaneous_bps(i, &mut rng);
            assert!(inst >= 0.0);
            if (est - inst).abs() > 1.0 {
                any_deviation = true;
            }
        }
        assert!(any_deviation);
        assert!(p.variability().coefficient_of_variation() > 0.3);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let pa = BandwidthProvider::generate(30, VariabilityKind::MeasuredLow, &mut a);
        let pb = BandwidthProvider::generate(30, VariabilityKind::MeasuredLow, &mut b);
        for i in 0..30 {
            assert_eq!(pa.estimated_bps(i), pb.estimated_bps(i));
        }
        assert_eq!(pa.paths().len(), 30);
    }

    #[test]
    fn iid_mode_has_no_series_and_matches_plain_generate() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let plain = BandwidthProvider::generate(10, VariabilityKind::NlanrLike, &mut a);
        let explicit = BandwidthProvider::generate_with_model(
            10,
            VariabilityKind::NlanrLike,
            BandwidthModel::Iid,
            1e6,
            &mut b,
        );
        assert!(!plain.is_time_varying());
        assert!(!explicit.is_time_varying());
        assert!(explicit.series(0).is_none());
        for i in 0..10 {
            assert_eq!(plain.estimated_bps(i), explicit.estimated_bps(i));
        }
        // The i.i.d. constructor consumes no extra randomness: the streams
        // stay aligned after generation.
        assert_eq!(
            plain.instantaneous_bps(0, &mut a),
            explicit.instantaneous_bps(0, &mut b)
        );
    }

    #[test]
    fn ar1_mode_is_piecewise_constant_between_series_samples() {
        let mut rng = StdRng::seed_from_u64(11);
        let model = BandwidthModel::Ar1 {
            autocorrelation: 0.8,
            interval_secs: 100.0,
        };
        let p = BandwidthProvider::generate_with_model(
            5,
            VariabilityKind::MeasuredModerate,
            model,
            1_000.0,
            &mut rng,
        );
        assert!(p.is_time_varying());
        let series = p.series(2).unwrap();
        assert_eq!(series.len(), 11);
        // Reads at request time consume no randomness and agree with the
        // underlying series.
        let before = rng.clone();
        let at_0 = p.request_bps(2, 0.0, &mut rng);
        let at_mid = p.request_bps(2, 150.0, &mut rng);
        assert_eq!(at_0, series.samples_bps()[0]);
        assert_eq!(at_mid, series.samples_bps()[1]);
        assert_eq!(rng.gen::<u64>(), before.clone().gen::<u64>());
        // Same-seed regeneration is bit-identical.
        let mut rng2 = StdRng::seed_from_u64(11);
        let q = BandwidthProvider::generate_with_model(
            5,
            VariabilityKind::MeasuredModerate,
            model,
            1_000.0,
            &mut rng2,
        );
        for i in 0..5 {
            assert_eq!(
                p.series(i).unwrap().samples_bps(),
                q.series(i).unwrap().samples_bps()
            );
        }
    }

    #[test]
    fn ar1_series_mean_tracks_path_mean() {
        let mut rng = StdRng::seed_from_u64(13);
        let p = BandwidthProvider::generate_with_model(
            3,
            VariabilityKind::MeasuredLow,
            BandwidthModel::ar1_default(),
            2_000_000.0,
            &mut rng,
        );
        for i in 0..3 {
            let series = p.series(i).unwrap();
            let mean = series.mean_bps();
            let path_mean = p.estimated_bps(i);
            assert!(
                (mean - path_mean).abs() / path_mean < 0.1,
                "path {i}: series mean {mean} vs path mean {path_mean}"
            );
        }
    }

    #[test]
    fn capacity_is_mean_in_iid_mode_and_series_in_ar1_mode() {
        let mut rng = StdRng::seed_from_u64(5);
        let iid = BandwidthProvider::generate(4, VariabilityKind::NlanrLike, &mut rng);
        for i in 0..4 {
            assert_eq!(iid.capacity_bps(i, 0.0), iid.estimated_bps(i));
            assert_eq!(iid.capacity_bps(i, 1e6), iid.estimated_bps(i));
        }
        let ar1 = BandwidthProvider::generate_with_model(
            3,
            VariabilityKind::MeasuredModerate,
            BandwidthModel::Ar1 {
                autocorrelation: 0.8,
                interval_secs: 100.0,
            },
            1_000.0,
            &mut rng,
        );
        let series = ar1.series(1).unwrap();
        assert_eq!(ar1.capacity_bps(1, 0.0), series.samples_bps()[0]);
        assert_eq!(ar1.capacity_bps(1, 150.0), series.samples_bps()[1]);
    }

    #[test]
    fn estimator_bank_oracle_and_probe() {
        let mut oracle = EstimatorBank::new(EstimatorKind::Oracle, 4);
        assert_eq!(oracle.decision_bps(1, 100.0, 40.0), 100.0);
        oracle.observe_transfer(1, 40.0);
        assert_eq!(oracle.decision_bps(1, 100.0, 40.0), 100.0);

        let mut probe = EstimatorBank::new(EstimatorKind::Probe, 4);
        assert_eq!(probe.decision_bps(0, 100.0, 37.5), 37.5);
        probe.observe_transfer(0, 999.0);
        assert_eq!(probe.decision_bps(0, 100.0, 50.0), 50.0);
    }

    #[test]
    fn estimator_bank_passive_kinds_lag_and_fall_back() {
        let mut ewma = EstimatorBank::new(EstimatorKind::Ewma { alpha: 0.5 }, 2);
        // No observation yet: oracle fallback.
        assert_eq!(ewma.decision_bps(0, 80.0, 20.0), 80.0);
        ewma.observe_transfer(0, 20.0);
        assert_eq!(ewma.decision_bps(0, 80.0, 60.0), 20.0);
        ewma.observe_transfer(0, 60.0);
        assert_eq!(ewma.decision_bps(0, 80.0, 60.0), 40.0);
        // Per-path state is independent.
        assert_eq!(ewma.decision_bps(1, 80.0, 60.0), 80.0);

        let mut win = EstimatorBank::new(EstimatorKind::Windowed { window: 2 }, 1);
        assert_eq!(win.decision_bps(0, 80.0, 10.0), 80.0);
        win.observe_transfer(0, 10.0);
        win.observe_transfer(0, 20.0);
        win.observe_transfer(0, 30.0);
        assert_eq!(win.decision_bps(0, 80.0, 10.0), 25.0);
    }
}
