//! The session-level discrete-event core: overlapping streaming sessions
//! sharing bottleneck links.
//!
//! The per-request simulator ([`crate::SimWorker`]) treats every request as
//! an isolated bandwidth draw. Real streaming load is different: a session
//! spans its playback duration, and all sessions fetching from the same
//! origin share that path's bottleneck capacity. This module adds that
//! contention axis as a separate, golden-pinned-path-preserving mode:
//!
//! * **Processor sharing** — a path with capacity `C` and `n` sessions
//!   actively transferring gives each session `C / n` bytes per second.
//!   Every arrival on and departure from the path re-divides the capacity
//!   and re-schedules all affected completion events (cancel + re-push on
//!   the [`EventQueue`]).
//! * **Fluid sessions** — between events every session's download and
//!   playback-buffer state evolve piecewise-linearly, so
//!   [`SessionState::advance`] integrates them in closed form. A session
//!   rebuffers whenever its cumulative playback demand exceeds the bytes
//!   available (cached prefix + downloaded so far).
//! * **Time-weighted metrics** ([`SessionMetrics`]) — concurrent-viewer
//!   curves, rebuffer probability, and origin egress binned over time.
//!
//! # Determinism contract
//!
//! A run is a pure function of `(configuration, seed)`, byte-identical at
//! any `SC_SIM_THREADS` (parallelism only shards independent runs, as in
//! the per-request mode). Within a run the event order is total:
//! `(time, sequence)` with sequences assigned at schedule time, and every
//! path re-division iterates its member sessions in ascending session
//! index. The naive fluid reference model in
//! `crates/sim/tests/session_reference.rs` replays the same contract
//! without the heap or the incremental bookkeeping and must match bitwise.

use crate::bandwidth::{BandwidthProvider, EstimatorBank};
use crate::config::{PathFaultModel, SimError, SimulationConfig};
use crate::event::{EventKind, EventQueue};
use crate::exec::{
    bandwidth_seed, fault_seed, run_grid_with, GridRunner, ParallelExecutor, SharedWorkload,
};
use crate::metrics::SessionMetrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_cache::policy::UtilityPolicy;
use sc_cache::CacheEngine;
use std::sync::Arc;

/// One streaming session to simulate: a path (bottleneck link) index plus
/// the arrival instant and playback characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSpec {
    /// Index of the bottleneck path (== the object's catalog index in the
    /// workload-driven mode).
    pub path: u32,
    /// Arrival time on the simulation clock, in seconds.
    pub arrival_secs: f64,
    /// Playback duration in seconds.
    pub duration_secs: f64,
    /// CBR encoding rate in bytes per second.
    pub rate_bps: f64,
    /// Total object size in bytes.
    pub size_bytes: f64,
}

/// Callbacks connecting the contention core to the caching layer.
///
/// The event loop is cache-agnostic: at each arrival it asks the hooks how
/// many prefix bytes the cache serves instantly, and at each completed
/// origin transfer it reports the realised throughput (the input of the
/// passive bandwidth estimators). [`NoCacheHooks`] is the trivial
/// implementation used by pure-contention tests.
pub trait SessionHooks {
    /// Called once per session, in event order, when the session arrives.
    ///
    /// `share_bps` is the processor-sharing bandwidth the session would
    /// receive if it joined its path now (capacity divided by the member
    /// count including itself) — what an active probe would measure.
    /// Returns the prefix bytes served from the cache; the core clamps the
    /// value into `[0, size_bytes]`.
    fn on_arrival(&mut self, index: usize, spec: &SessionSpec, share_bps: f64) -> f64;

    /// Called when a session's origin transfer completes, with the mean
    /// throughput the transfer achieved. Sessions served entirely from the
    /// cache never report (a full hit reveals nothing about the path).
    fn on_transfer_complete(&mut self, index: usize, spec: &SessionSpec, throughput_bps: f64) {
        let _ = (index, spec, throughput_bps);
    }
}

/// Hooks for cache-less contention scenarios: no prefix is ever cached.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCacheHooks;

impl SessionHooks for NoCacheHooks {
    fn on_arrival(&mut self, _index: usize, _spec: &SessionSpec, _share_bps: f64) -> f64 {
        0.0
    }
}

/// Origin egress accumulated into fixed-width time bins.
///
/// Bytes downloaded during `[from, to]` are spread uniformly over the bins
/// the interval overlaps; time at or beyond the horizon lands in the last
/// bin, so the bins always sum to the total origin bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct EgressAccumulator {
    bins: Vec<f64>,
    horizon_secs: f64,
}

impl EgressAccumulator {
    /// Creates `bins` zeroed bins spanning `[0, horizon_secs]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn new(bins: usize, horizon_secs: f64) -> Self {
        assert!(bins > 0, "egress accumulation needs at least one bin");
        EgressAccumulator {
            bins: vec![0.0; bins],
            horizon_secs: horizon_secs.max(0.0),
        }
    }

    /// Adds `bytes` transferred uniformly over `[from, to]`.
    pub fn add(&mut self, from: f64, to: f64, bytes: f64) {
        if bytes <= 0.0 {
            return;
        }
        let n = self.bins.len();
        let width = self.horizon_secs / n as f64;
        // `horizon_secs` is clamped non-negative (and `f64::max` drops a
        // NaN), so `width` is a plain non-negative value here.
        if width <= 0.0 || to <= from {
            // Degenerate horizon or instantaneous transfer: lump the bytes
            // into the bin of the starting instant.
            let idx = self.index_of(from, width);
            self.bins[idx] += bytes;
            return;
        }
        let span = to - from;
        let first = self.index_of(from, width);
        let last = self.index_of(to, width);
        for idx in first..=last {
            let bin_start = idx as f64 * width;
            let bin_end = if idx + 1 == n {
                f64::INFINITY
            } else {
                (idx + 1) as f64 * width
            };
            // Adjacent bins cut the interval at the identical float
            // boundary value, so the segments telescope to exactly `span`.
            let seg = (to.min(bin_end) - from.max(bin_start)).max(0.0);
            self.bins[idx] += bytes * (seg / span);
        }
    }

    fn index_of(&self, t: f64, width: f64) -> usize {
        if width > 0.0 {
            ((t / width) as usize).min(self.bins.len() - 1)
        } else {
            0
        }
    }

    /// The accumulated bins.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Consumes the accumulator, returning the bins.
    pub fn into_bins(self) -> Vec<f64> {
        self.bins
    }
}

/// Pre-generated per-path outage intervals for one simulation run.
///
/// The timeline is drawn *before* the event loop starts — path by path,
/// alternating exponential up (`mtbf_secs`) and down (`mttr_secs`) periods
/// from a single seeded RNG — so the realised outages are a pure function
/// of `(n_paths, horizon, model, seed)` and the simulation stays
/// byte-identical at any `SC_SIM_THREADS`. Down periods that begin before
/// the horizon keep their full sampled length (a transfer outlasting the
/// horizon still sees the repair), while sampling stops at the first
/// up-period start beyond it.
#[derive(Debug, Clone, PartialEq)]
pub struct PathFaultTimeline {
    /// Sorted, disjoint `(down_start, down_end)` intervals per path.
    outages: Vec<Vec<(f64, f64)>>,
    /// Capacity multiplier while a path is down, in `(0, 1]`.
    residual: f64,
}

/// One exponential draw with the given mean: `-mean · ln(1 − u)`.
fn exp_sample(rng: &mut StdRng, mean_secs: f64) -> f64 {
    let u: f64 = rng.gen();
    -mean_secs * (1.0 - u).ln()
}

impl PathFaultTimeline {
    /// Draws the outage timeline for `n_paths` paths over
    /// `[0, horizon_secs]` from `model`, seeded by `seed` (derive it from
    /// the run seed via [`crate::exec::fault_seed`]).
    ///
    /// # Panics
    ///
    /// Panics if `model` fails [`PathFaultModel::validate`] — callers are
    /// expected to validate configurations up front.
    pub fn generate(n_paths: usize, horizon_secs: f64, model: PathFaultModel, seed: u64) -> Self {
        model
            .validate()
            .expect("fault model must be validated before timeline generation");
        let mut rng = StdRng::seed_from_u64(seed);
        let outages = (0..n_paths)
            .map(|_| {
                let mut intervals = Vec::new();
                let mut t = exp_sample(&mut rng, model.mtbf_secs);
                while t < horizon_secs {
                    let down = exp_sample(&mut rng, model.mttr_secs);
                    intervals.push((t, t + down));
                    t += down + exp_sample(&mut rng, model.mtbf_secs);
                }
                intervals
            })
            .collect();
        PathFaultTimeline {
            outages,
            residual: model.residual_capacity_fraction,
        }
    }

    /// Builds a timeline from explicit per-path outage intervals — for
    /// hand-crafted scenarios and tests.
    ///
    /// # Panics
    ///
    /// Panics if any path's intervals are unsorted, overlapping, or
    /// ill-formed (`end < start`, non-finite bounds), or if `residual` is
    /// outside `(0, 1]`.
    pub fn from_outages(outages: Vec<Vec<(f64, f64)>>, residual: f64) -> Self {
        assert!(
            residual.is_finite() && residual > 0.0 && residual <= 1.0,
            "residual capacity fraction must lie in (0, 1], got {residual}"
        );
        for intervals in &outages {
            let mut prev_end = f64::NEG_INFINITY;
            for &(start, end) in intervals {
                assert!(
                    start.is_finite() && end.is_finite() && start <= end && start >= prev_end,
                    "outage intervals must be finite, ordered and disjoint"
                );
                prev_end = end;
            }
        }
        PathFaultTimeline { outages, residual }
    }

    /// Number of paths the timeline covers.
    pub fn paths(&self) -> usize {
        self.outages.len()
    }

    /// The sorted `(down_start, down_end)` outage intervals of `path`.
    pub fn outages(&self, path: usize) -> &[(f64, f64)] {
        &self.outages[path]
    }

    /// Capacity multiplier applied while a path is down.
    pub fn residual_capacity_fraction(&self) -> f64 {
        self.residual
    }

    /// Total down-time summed over all paths, clamped to
    /// `[0, horizon_secs]`.
    pub fn outage_secs_within(&self, horizon_secs: f64) -> f64 {
        self.outages
            .iter()
            .flatten()
            .map(|&(start, end)| (end.min(horizon_secs) - start.min(horizon_secs)).max(0.0))
            .sum()
    }
}

/// The evolving state of one session.
///
/// Public so the naive fluid reference model can drive the *identical*
/// closed-form integration ([`SessionState::advance`]) while independently
/// re-deriving shares and completion times from scratch — the bitwise
/// cross-check then isolates the event core's scheduling and bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionState {
    /// The static description of the session.
    pub spec: SessionSpec,
    /// Prefix bytes served from the cache at arrival.
    pub prefix_bytes: f64,
    /// Bytes that must come from the origin (`size - prefix`).
    pub origin_bytes: f64,
    /// Origin bytes downloaded so far.
    pub downloaded_bytes: f64,
    /// Current processor-sharing allocation, in bytes per second (0 when
    /// not transferring).
    pub share_bps: f64,
    /// Simulation time up to which this state has been integrated.
    pub last_update_secs: f64,
    /// Accumulated time during which the playback buffer was drained
    /// (cumulative demand exceeded available bytes), in seconds.
    pub rebuffer_secs: f64,
    /// Playback time spent inside a path outage *without* stalling, in
    /// seconds — the cached prefix (plus whatever buffer the session had
    /// built) masking the fault. Zero unless fault injection is active.
    pub masked_stall_secs: f64,
    /// Whether the session currently holds a share on its path.
    pub transferring: bool,
    /// Time the origin transfer finished (the arrival time for full hits);
    /// `NaN` until then.
    pub transfer_end_secs: f64,
}

impl SessionState {
    /// A session that has just arrived with `prefix_bytes` served from the
    /// cache.
    pub fn begin(spec: SessionSpec, prefix_bytes: f64) -> Self {
        let prefix = prefix_bytes.clamp(0.0, spec.size_bytes);
        SessionState {
            spec,
            prefix_bytes: prefix,
            origin_bytes: spec.size_bytes - prefix,
            downloaded_bytes: 0.0,
            share_bps: 0.0,
            last_update_secs: spec.arrival_secs,
            rebuffer_secs: 0.0,
            masked_stall_secs: 0.0,
            transferring: false,
            transfer_end_secs: f64::NAN,
        }
    }

    /// Integrates the session from its last update instant to `to`:
    /// advances the origin download at the current share, accumulates
    /// playback-buffer drain time, and attributes the downloaded bytes to
    /// `egress`.
    ///
    /// Both the event core and the naive reference model call exactly this
    /// function at exactly the same instants, which is what makes their
    /// outputs bitwise comparable.
    pub fn advance(&mut self, to: f64, egress: &mut EgressAccumulator) {
        self.advance_masked(to, egress, false);
    }

    /// [`SessionState::advance`] with outage attribution: when `path_down`
    /// is set, the playback time of this segment that did *not* stall is
    /// credited to [`SessionState::masked_stall_secs`] — the fault-aware
    /// event loop guarantees no advance segment straddles an outage
    /// boundary, so the flag is well-defined per segment.
    pub fn advance_masked(&mut self, to: f64, egress: &mut EgressAccumulator, path_down: bool) {
        let from = self.last_update_secs;
        if to <= from {
            return;
        }
        let rate = if self.transferring {
            self.share_bps
        } else {
            0.0
        };

        // Rebuffer accumulation is confined to the playback window: the
        // buffer deficit f(t) = demand(t) - available(t) is linear between
        // events, so the time spent with f > 0 has a closed form.
        let play_end = self.spec.arrival_secs + self.spec.duration_secs;
        let rb_end = to.min(play_end);
        if rb_end > from {
            let f0 = self.spec.rate_bps * (from - self.spec.arrival_secs)
                - (self.prefix_bytes + self.downloaded_bytes);
            let slope = self.spec.rate_bps - rate;
            let stalled = positive_measure(f0, slope, rb_end - from);
            self.rebuffer_secs += stalled;
            if path_down {
                self.masked_stall_secs += ((rb_end - from) - stalled).max(0.0);
            }
        }

        if self.transferring && rate > 0.0 {
            let before = self.downloaded_bytes;
            self.downloaded_bytes = (before + rate * (to - from)).min(self.origin_bytes);
            egress.add(from, to, self.downloaded_bytes - before);
        }
        self.last_update_secs = to;
    }

    /// Origin bytes still to download.
    pub fn remaining_bytes(&self) -> f64 {
        (self.origin_bytes - self.downloaded_bytes).max(0.0)
    }
}

/// Stall durations at or below this threshold are float-accumulation dust,
/// not model predictions, and do not count a session as rebuffered.
///
/// The buffer deficit compares `rate · elapsed` (one multiplication)
/// against the downloaded bytes (a sum of `share · dt` segments); when the
/// two are mathematically equal, rounding can leave a residue of a few ulps
/// — observed around 1e-14 s — which would otherwise flip whole sessions
/// into the rebuffer-probability numerator under exactly-sufficient
/// capacity. A nanosecond is five orders of magnitude above that dust and
/// far below any stall a viewer (or the fluid model, at meaningfully scarce
/// capacity) can produce. `SessionFinal::rebuffer_secs` stays raw.
pub const REBUFFER_EPSILON_SECS: f64 = 1e-9;

/// Length of the sub-interval of `[0, len]` on which the linear function
/// `f0 + slope · x` is strictly positive.
fn positive_measure(f0: f64, slope: f64, len: f64) -> f64 {
    if slope == 0.0 {
        return if f0 > 0.0 { len } else { 0.0 };
    }
    let root = (-f0 / slope).clamp(0.0, len);
    if slope > 0.0 {
        len - root
    } else {
        root
    }
}

/// Per-session final state, exposed for the reference cross-check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionFinal {
    /// Prefix bytes the cache served at arrival.
    pub prefix_bytes: f64,
    /// Origin bytes downloaded (equals `size - prefix` once complete).
    pub downloaded_bytes: f64,
    /// Accumulated playback-buffer drain time in seconds.
    pub rebuffer_secs: f64,
    /// Time the origin transfer finished.
    pub transfer_end_secs: f64,
}

/// Everything a session simulation produces: the aggregate time-weighted
/// metrics plus the per-session final states.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSimOutput {
    /// Aggregate time-weighted metrics.
    pub metrics: SessionMetrics,
    /// Final state of session `i` at index `i` (spec order).
    pub finals: Vec<SessionFinal>,
}

/// Runs the discrete-event session simulation over `specs`.
///
/// `capacity` maps `(path, time)` to the path's bottleneck capacity in
/// bytes per second — it must be positive and finite whenever the path has
/// an active session. `egress_bins` sets the resolution of the
/// origin-egress-over-time curve.
///
/// Sessions must be given in non-decreasing arrival order (the order their
/// arrival events are scheduled, hence the tie-break order for
/// simultaneous arrivals).
///
/// ```
/// use sc_sim::session::{simulate_sessions, NoCacheHooks, SessionSpec};
///
/// // Two overlapping sessions on one 50 KB/s path, 100 s × 48 KB/s each:
/// // alone each would keep up, but while both transfer each gets 25 KB/s.
/// let spec = |t| SessionSpec {
///     path: 0,
///     arrival_secs: t,
///     duration_secs: 100.0,
///     rate_bps: 48_000.0,
///     size_bytes: 4_800_000.0,
/// };
/// let out = simulate_sessions(&[spec(0.0), spec(10.0)], 1, |_, _| 50_000.0,
///                             &mut NoCacheHooks, 8);
/// assert_eq!(out.metrics.sessions, 2);
/// assert!(out.metrics.rebuffer_probability > 0.0);
/// assert_eq!(out.metrics.peak_concurrent_viewers, 2);
/// ```
///
/// # Panics
///
/// Panics if `specs` is not sorted by arrival time, a spec's path index is
/// not below `n_paths`, or `capacity` returns a non-positive or non-finite
/// value for a path with active sessions.
pub fn simulate_sessions<C, H>(
    specs: &[SessionSpec],
    n_paths: usize,
    capacity: C,
    hooks: &mut H,
    egress_bins: usize,
) -> SessionSimOutput
where
    C: Fn(usize, f64) -> f64,
    H: SessionHooks + ?Sized,
{
    simulate_sessions_with_faults(specs, n_paths, capacity, hooks, egress_bins, None)
}

/// [`simulate_sessions`] with an optional pre-generated path outage
/// timeline.
///
/// While a path is down, `capacity(path, t)` is multiplied by the
/// timeline's residual fraction, and every affected session's
/// processor-sharing allocation is re-divided at the outage boundaries.
/// Sessions that keep playing through a down period accumulate
/// [`SessionState::masked_stall_secs`] — the paper's partial-caching value
/// proposition under failure: the cached prefix masking an origin outage.
/// With `faults = None` this is exactly [`simulate_sessions`], event for
/// event and bit for bit.
///
/// # Panics
///
/// As [`simulate_sessions`]; additionally panics if the timeline covers
/// fewer paths than `n_paths`.
pub fn simulate_sessions_with_faults<C, H>(
    specs: &[SessionSpec],
    n_paths: usize,
    capacity: C,
    hooks: &mut H,
    egress_bins: usize,
    faults: Option<&PathFaultTimeline>,
) -> SessionSimOutput
where
    C: Fn(usize, f64) -> f64,
    H: SessionHooks + ?Sized,
{
    assert!(
        specs
            .windows(2)
            .all(|w| w[0].arrival_secs <= w[1].arrival_secs),
        "session specs must be sorted by arrival time"
    );
    assert!(
        specs.iter().all(|s| (s.path as usize) < n_paths),
        "session path index out of range"
    );

    // The observation horizon: the end of the last playback window. Egress
    // from transfers that outlast it is clamped into the final bin.
    let horizon_secs = specs
        .iter()
        .map(|s| s.arrival_secs + s.duration_secs)
        .fold(0.0_f64, f64::max);
    let mut egress = EgressAccumulator::new(egress_bins, horizon_secs);

    let mut queue = EventQueue::new();
    for spec in specs {
        queue.push(spec.arrival_secs, EventKind::Arrival(0));
    }
    // Arrival events carry their index implicitly: they were pushed in spec
    // order, so seq == spec index for the first `specs.len()` sequences.
    // (EventKind still stores an index for the completion/playback events;
    // arrivals resolve theirs from the seq instead, which keeps the
    // pre-scheduling loop allocation-free.)

    // Outage boundaries are scheduled strictly after the arrivals so the
    // seq == spec index identity above survives fault injection.
    let residual = faults.map_or(1.0, |f| f.residual_capacity_fraction());
    if let Some(timeline) = faults {
        assert!(
            timeline.paths() >= n_paths,
            "fault timeline covers {} paths but the simulation has {n_paths}",
            timeline.paths()
        );
        for path in 0..n_paths {
            for &(down_start, down_end) in timeline.outages(path) {
                queue.push(down_start, EventKind::PathDown(path as u32));
                queue.push(down_end, EventKind::PathUp(path as u32));
            }
        }
    }
    // Whether each path is currently inside an outage; capacity is scaled
    // by `residual` while true.
    let mut path_down: Vec<bool> = vec![false; n_paths];

    let mut states: Vec<SessionState> = Vec::with_capacity(specs.len());
    // seq of the pending TransferComplete event per started session.
    let mut completion_seq: Vec<Option<u64>> = Vec::with_capacity(specs.len());
    // Active (transferring) session indices per path, ascending — the
    // iteration order of every re-division, part of the determinism
    // contract shared with the reference model.
    let mut path_members: Vec<Vec<u32>> = vec![Vec::new(); n_paths];

    let mut viewers: u64 = 0;
    let mut peak_viewers: u64 = 0;
    let mut viewer_seconds = 0.0;
    let mut last_event_secs = 0.0;

    while let Some(event) = queue.pop() {
        viewer_seconds += viewers as f64 * (event.time_secs - last_event_secs);
        last_event_secs = event.time_secs;
        let now = event.time_secs;

        match event.kind {
            EventKind::Arrival(_) => {
                let index = event.seq as usize;
                let spec = &specs[index];
                let path = spec.path as usize;

                let mut cap = capacity(path, now);
                assert!(
                    cap.is_finite() && cap > 0.0,
                    "path {path} capacity must be positive and finite, got {cap}"
                );
                if path_down[path] {
                    cap *= residual;
                }
                let share_if_joined = cap / (path_members[path].len() + 1) as f64;
                let prefix = hooks.on_arrival(index, spec, share_if_joined);

                debug_assert_eq!(states.len(), index);
                let mut state = SessionState::begin(*spec, prefix);
                viewers += 1;
                peak_viewers = peak_viewers.max(viewers);
                queue.push(
                    spec.arrival_secs + spec.duration_secs,
                    EventKind::PlaybackEnd(index as u32),
                );

                if state.origin_bytes > 0.0 {
                    state.transferring = true;
                    states.push(state);
                    completion_seq.push(None);
                    // Bring the existing members up to now at their old
                    // shares, admit the newcomer (highest index, so the
                    // member list stays ascending), then re-divide.
                    advance_path(
                        &path_members[path],
                        &mut states,
                        now,
                        &mut egress,
                        path_down[path],
                    );
                    path_members[path].push(index as u32);
                    reshare_path(
                        &path_members[path],
                        &mut states,
                        &mut completion_seq,
                        &mut queue,
                        cap,
                        now,
                    );
                } else {
                    // Full cache hit: no origin transfer at all.
                    state.transfer_end_secs = now;
                    states.push(state);
                    completion_seq.push(None);
                }
            }
            EventKind::TransferComplete(s) => {
                let index = s as usize;
                // Stale completions are cancelled inside the queue, so
                // every popped completion is live.
                completion_seq[index] = None;
                let path = states[index].spec.path as usize;
                advance_path(
                    &path_members[path],
                    &mut states,
                    now,
                    &mut egress,
                    path_down[path],
                );

                let state = &mut states[index];
                state.downloaded_bytes = state.origin_bytes;
                state.transferring = false;
                state.share_bps = 0.0;
                state.transfer_end_secs = now;
                let elapsed = now - state.spec.arrival_secs;
                let origin = state.origin_bytes;
                let spec = state.spec;
                if elapsed > 0.0 {
                    hooks.on_transfer_complete(index, &spec, origin / elapsed);
                }

                let members = &mut path_members[path];
                let pos = members
                    .iter()
                    .position(|&m| m == s)
                    .expect("completing session is a path member");
                members.remove(pos);
                if !members.is_empty() {
                    let mut cap = capacity(path, now);
                    assert!(
                        cap.is_finite() && cap > 0.0,
                        "path {path} capacity must be positive and finite, got {cap}"
                    );
                    if path_down[path] {
                        cap *= residual;
                    }
                    reshare_path(
                        &path_members[path],
                        &mut states,
                        &mut completion_seq,
                        &mut queue,
                        cap,
                        now,
                    );
                }
            }
            EventKind::PlaybackEnd(s) => {
                // Integrate the tail of the playback window (rebuffer time
                // never accrues past it) before the viewer departs.
                let path = states[s as usize].spec.path as usize;
                states[s as usize].advance_masked(now, &mut egress, path_down[path]);
                viewers -= 1;
            }
            EventKind::PathDown(p) | EventKind::PathUp(p) => {
                let path = p as usize;
                let goes_down = matches!(event.kind, EventKind::PathDown(_));
                // Integrate *every* arrived session on the path — members
                // and buffer-only players alike — through the boundary
                // under the outgoing state, so no advance segment ever
                // straddles an outage edge (the invariant masked-stall
                // attribution rests on). Sessions not yet arrived or past
                // their window are no-ops inside advance.
                for state in states.iter_mut() {
                    if state.spec.path as usize == path {
                        state.advance_masked(now, &mut egress, path_down[path]);
                    }
                }
                path_down[path] = goes_down;
                if !path_members[path].is_empty() {
                    let mut cap = capacity(path, now);
                    assert!(
                        cap.is_finite() && cap > 0.0,
                        "path {path} capacity must be positive and finite, got {cap}"
                    );
                    if goes_down {
                        cap *= residual;
                    }
                    reshare_path(
                        &path_members[path],
                        &mut states,
                        &mut completion_seq,
                        &mut queue,
                        cap,
                        now,
                    );
                }
            }
        }
    }

    let finals: Vec<SessionFinal> = states
        .iter()
        .map(|s| SessionFinal {
            prefix_bytes: s.prefix_bytes,
            downloaded_bytes: s.downloaded_bytes,
            rebuffer_secs: s.rebuffer_secs,
            transfer_end_secs: s.transfer_end_secs,
        })
        .collect();

    let mut metrics = SessionMetrics::from_sessions(
        &states,
        viewer_seconds,
        peak_viewers,
        horizon_secs,
        egress.into_bins(),
    );
    metrics.outage_secs = faults.map_or(0.0, |f| f.outage_secs_within(horizon_secs));
    SessionSimOutput { metrics, finals }
}

/// Integrates every member of a path up to `now` at its current share.
fn advance_path(
    members: &[u32],
    states: &mut [SessionState],
    now: f64,
    egress: &mut EgressAccumulator,
    path_down: bool,
) {
    for &m in members {
        states[m as usize].advance_masked(now, egress, path_down);
    }
}

/// Re-divides a path's capacity among its members (already advanced to
/// `now`) and re-schedules each member's completion event.
fn reshare_path(
    members: &[u32],
    states: &mut [SessionState],
    completion_seq: &mut [Option<u64>],
    queue: &mut EventQueue,
    capacity_bps: f64,
    now: f64,
) {
    let share = capacity_bps / members.len() as f64;
    for &m in members {
        let state = &mut states[m as usize];
        state.share_bps = share;
        if let Some(seq) = completion_seq[m as usize].take() {
            queue.cancel(seq);
        }
        let completes = now + state.remaining_bytes() / share;
        completion_seq[m as usize] = Some(queue.push(completes, EventKind::TransferComplete(m)));
    }
}

/// Result of one session-mode simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRunResult {
    /// Time-weighted session metrics over the whole run.
    pub metrics: SessionMetrics,
    /// Bytes held in the cache at the end of the run.
    pub final_cache_used_bytes: f64,
    /// Number of distinct objects (fully or partially) cached at the end.
    pub final_cached_objects: usize,
}

/// The self-contained body of one session-mode run, mirroring
/// [`crate::SimWorker`]: a configuration, a run seed, and optionally a
/// pre-generated shared workload.
#[derive(Debug, Clone)]
pub struct SessionWorker {
    config: SimulationConfig,
    seed: u64,
    workload: Option<Arc<SharedWorkload>>,
}

/// The cache + estimator hooks of the workload-driven session mode.
struct CacheHooks<'a> {
    cache: &'a mut CacheEngine<Box<dyn UtilityPolicy + Send + Sync>>,
    estimators: &'a mut EstimatorBank,
    provider: &'a BandwidthProvider,
    metas: &'a [sc_cache::ObjectMeta],
}

impl SessionHooks for CacheHooks<'_> {
    fn on_arrival(&mut self, _index: usize, spec: &SessionSpec, share_bps: f64) -> f64 {
        let path = spec.path as usize;
        let meta = &self.metas[path];
        let oracle = self.provider.estimated_bps(path);
        // The estimator's "current bandwidth" is the fair share this
        // session would get — what an active probe observes under
        // contention.
        let estimated = self.estimators.decision_bps(path, oracle, share_bps);
        let outcome = self.cache.on_access_slot(spec.path, meta, estimated);
        outcome.cached_bytes_before
    }

    fn on_transfer_complete(&mut self, _index: usize, spec: &SessionSpec, throughput_bps: f64) {
        self.estimators
            .observe_transfer(spec.path as usize, throughput_bps);
    }
}

impl SessionWorker {
    /// A worker that generates its own workload from `config.workload`
    /// (with the seed overridden by `seed`).
    pub fn new(config: SimulationConfig, seed: u64) -> Self {
        SessionWorker {
            config,
            seed,
            workload: None,
        }
    }

    /// A worker running over a pre-generated workload (see
    /// [`crate::SimWorker::with_workload`] for the seed contract).
    pub fn with_workload(
        config: SimulationConfig,
        seed: u64,
        workload: Arc<SharedWorkload>,
    ) -> Self {
        SessionWorker {
            config,
            seed,
            workload: Some(workload),
        }
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configuration under test.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Executes the session-mode simulation run.
    ///
    /// Unlike the per-request mode, session metrics are time-weighted over
    /// the whole trace; `warmup_fraction` is a per-request-mode concept and
    /// is ignored here (the contention transient *is* part of the measured
    /// signal).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the configuration is invalid.
    pub fn run(&self) -> Result<SessionRunResult, SimError> {
        let config = &self.config;
        config.validate()?;
        let generated;
        let shared = match &self.workload {
            Some(shared) => shared.as_ref(),
            None => {
                generated = SharedWorkload::generate(&config.workload, self.seed)?;
                &generated
            }
        };
        let (catalog, trace) = (&shared.catalog, &shared.trace);
        let metas = shared.metas();

        let specs: Vec<SessionSpec> = trace
            .session_arrivals(catalog)
            .into_iter()
            .map(|s| SessionSpec {
                path: s.object.as_u32(),
                arrival_secs: s.time_secs,
                duration_secs: s.duration_secs,
                rate_bps: s.bitrate_bps,
                size_bytes: s.size_bytes,
            })
            .collect();

        // Same bandwidth-state derivation as the per-request mode: the
        // provider spans the trace, seeded independently of workload
        // generation.
        let mut bw_rng = StdRng::seed_from_u64(bandwidth_seed(self.seed));
        let provider_horizon = trace.requests().last().map_or(0.0, |r| r.time_secs);
        let provider = BandwidthProvider::generate_with_model(
            catalog.len(),
            config.variability,
            config.bandwidth_model,
            provider_horizon,
            &mut bw_rng,
        );
        let mut estimators = EstimatorBank::new(config.estimator, catalog.len());

        let mut cache = CacheEngine::new(config.cache_size_bytes, config.policy.build())
            .map_err(|e| SimError::Workload(e.to_string()))?;
        cache.ensure_slots(catalog.len());

        let mut hooks = CacheHooks {
            cache: &mut cache,
            estimators: &mut estimators,
            provider: &provider,
            metas,
        };
        // The outage timeline (if any) is drawn up front from its own
        // derived seed, spanning the playback horizon of the trace.
        let timeline = config.path_faults.map(|model| {
            let horizon_secs = specs
                .iter()
                .map(|s| s.arrival_secs + s.duration_secs)
                .fold(0.0_f64, f64::max);
            PathFaultTimeline::generate(catalog.len(), horizon_secs, model, fault_seed(self.seed))
        });
        let output = simulate_sessions_with_faults(
            &specs,
            catalog.len(),
            |path, time| provider.capacity_bps(path, time),
            &mut hooks,
            config.session_egress_bins,
            timeline.as_ref(),
        );

        Ok(SessionRunResult {
            metrics: output.metrics,
            final_cache_used_bytes: cache.used_bytes(),
            final_cached_objects: cache.len(),
        })
    }
}

/// Runs the full `configs × runs` grid in session mode and returns one
/// seed-averaged [`SessionMetrics`] per configuration, in configuration
/// order — the session-mode analogue of [`crate::exec::run_grid`], with
/// the same workload deduplication and determinism guarantees.
///
/// # Errors
///
/// Returns [`SimError::NoRuns`] when `runs` is zero, or the first
/// validation error across the grid in configuration order.
pub fn run_session_grid(
    configs: &[SimulationConfig],
    runs: usize,
    executor: &ParallelExecutor,
) -> Result<Vec<SessionMetrics>, SimError> {
    struct SessionGrid;
    impl GridRunner for SessionGrid {
        type Out = SessionMetrics;
        fn run(
            &self,
            config: &SimulationConfig,
            seed: u64,
            workload: Arc<SharedWorkload>,
        ) -> Result<SessionMetrics, SimError> {
            SessionWorker::with_workload(*config, seed, workload)
                .run()
                .map(|r| r.metrics)
        }
        fn average(&self, runs: &[SessionMetrics]) -> SessionMetrics {
            SessionMetrics::average(runs)
        }
    }
    run_grid_with(configs, runs, executor, &SessionGrid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VariabilityKind;
    use sc_cache::policy::PolicyKind;

    fn spec(path: u32, arrival: f64, duration: f64, rate: f64) -> SessionSpec {
        SessionSpec {
            path,
            arrival_secs: arrival,
            duration_secs: duration,
            rate_bps: rate,
            size_bytes: duration * rate,
        }
    }

    #[test]
    fn single_session_downloads_at_full_capacity() {
        let out = simulate_sessions(
            &[spec(0, 0.0, 100.0, 48_000.0)],
            1,
            |_, _| 96_000.0,
            &mut NoCacheHooks,
            4,
        );
        let f = &out.finals[0];
        assert_eq!(f.downloaded_bytes, 4_800_000.0);
        // 4.8 MB at 96 KB/s: done at t = 50.
        assert!((f.transfer_end_secs - 50.0).abs() < 1e-9);
        assert_eq!(f.rebuffer_secs, 0.0);
        assert_eq!(out.metrics.sessions, 1);
        assert_eq!(out.metrics.peak_concurrent_viewers, 1);
        // One viewer for 100 s.
        assert!((out.metrics.viewer_seconds - 100.0).abs() < 1e-9);
        assert!((out.metrics.origin_bytes_total - 4_800_000.0).abs() < 1e-6);
    }

    #[test]
    fn slow_path_rebuffers_for_the_bandwidth_deficit_time() {
        // 100 s × 48 KB/s over a 24 KB/s path, nothing cached: the buffer
        // is drained the whole playback window.
        let out = simulate_sessions(
            &[spec(0, 0.0, 100.0, 48_000.0)],
            1,
            |_, _| 24_000.0,
            &mut NoCacheHooks,
            4,
        );
        let f = &out.finals[0];
        assert!((f.rebuffer_secs - 100.0).abs() < 1e-9);
        // Transfer takes 200 s, well past the playback window.
        assert!((f.transfer_end_secs - 200.0).abs() < 1e-9);
        assert_eq!(out.metrics.rebuffer_probability, 1.0);
    }

    #[test]
    fn cached_prefix_prevents_rebuffering_on_a_half_rate_path() {
        // Half-rate path, half the object cached: the classic PB setting —
        // demand r·t never exceeds prefix + (r/2)·t for t ≤ D because
        // prefix = (r/2)·D.
        struct HalfPrefix;
        impl SessionHooks for HalfPrefix {
            fn on_arrival(&mut self, _i: usize, spec: &SessionSpec, _share: f64) -> f64 {
                spec.size_bytes / 2.0
            }
        }
        let out = simulate_sessions(
            &[spec(0, 0.0, 100.0, 48_000.0)],
            1,
            |_, _| 24_000.0,
            &mut HalfPrefix,
            4,
        );
        let f = &out.finals[0];
        assert_eq!(f.prefix_bytes, 2_400_000.0);
        assert_eq!(f.rebuffer_secs, 0.0);
        assert_eq!(out.metrics.rebuffer_probability, 0.0);
        assert!((out.metrics.traffic_reduction_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn processor_sharing_halves_throughput_while_two_sessions_overlap() {
        // Session A alone from t=0; B joins at t=25 on the same path.
        let specs = [
            spec(0, 0.0, 100.0, 48_000.0),
            spec(0, 25.0, 100.0, 48_000.0),
        ];
        let out = simulate_sessions(&specs, 1, |_, _| 96_000.0, &mut NoCacheHooks, 4);
        // A downloads 2.4 MB alone by t=25, then shares 48 KB/s each; A
        // needs another 2.4 MB → 50 s → done at t=75.
        assert!((out.finals[0].transfer_end_secs - 75.0).abs() < 1e-6);
        // B: 48 KB/s from 25 to 75 (2.4 MB), then full 96 KB/s for the
        // remaining 2.4 MB → 25 s → done at t=100.
        assert!((out.finals[1].transfer_end_secs - 100.0).abs() < 1e-6);
        assert_eq!(out.metrics.peak_concurrent_viewers, 2);
        // Viewer curve integral = sum of durations.
        assert!((out.metrics.viewer_seconds - 200.0).abs() < 1e-9);
    }

    #[test]
    fn simultaneous_arrivals_share_from_the_start() {
        let specs = [spec(0, 10.0, 50.0, 48_000.0), spec(0, 10.0, 50.0, 48_000.0)];
        let out = simulate_sessions(&specs, 1, |_, _| 96_000.0, &mut NoCacheHooks, 4);
        // Both transfer at 48 KB/s throughout: 2.4 MB / 48 KB/s = 50 s.
        for f in &out.finals {
            assert!((f.transfer_end_secs - 60.0).abs() < 1e-6);
            assert_eq!(f.rebuffer_secs, 0.0);
        }
    }

    #[test]
    fn sessions_on_different_paths_do_not_contend() {
        let specs = [spec(0, 0.0, 100.0, 48_000.0), spec(1, 0.0, 100.0, 48_000.0)];
        let out = simulate_sessions(&specs, 2, |_, _| 96_000.0, &mut NoCacheHooks, 4);
        for f in &out.finals {
            assert!((f.transfer_end_secs - 50.0).abs() < 1e-9);
        }
    }

    #[test]
    fn full_hit_sessions_never_touch_the_origin() {
        struct FullHit;
        impl SessionHooks for FullHit {
            fn on_arrival(&mut self, _i: usize, spec: &SessionSpec, _share: f64) -> f64 {
                spec.size_bytes
            }
            fn on_transfer_complete(&mut self, _i: usize, _s: &SessionSpec, _t: f64) {
                panic!("full hits must not report transfers");
            }
        }
        let out = simulate_sessions(
            &[spec(0, 0.0, 100.0, 48_000.0)],
            1,
            |_, _| 1.0, // capacity is irrelevant: the path is never joined
            &mut FullHit,
            4,
        );
        assert_eq!(out.metrics.origin_bytes_total, 0.0);
        assert_eq!(out.finals[0].downloaded_bytes, 0.0);
        assert_eq!(out.finals[0].rebuffer_secs, 0.0);
        assert!((out.metrics.traffic_reduction_ratio - 1.0).abs() < 1e-12);
        assert_eq!(out.metrics.egress_bins_bytes.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn egress_bins_sum_to_origin_bytes() {
        let specs = [
            spec(0, 0.0, 100.0, 48_000.0),
            spec(1, 10.0, 200.0, 24_000.0),
            spec(0, 30.0, 60.0, 48_000.0),
        ];
        let out = simulate_sessions(&specs, 2, |_, _| 40_000.0, &mut NoCacheHooks, 16);
        let total: f64 = out.metrics.egress_bins_bytes.iter().sum();
        assert!(
            (total - out.metrics.origin_bytes_total).abs() / out.metrics.origin_bytes_total < 1e-9
        );
        assert_eq!(out.metrics.egress_bins_bytes.len(), 16);
    }

    #[test]
    fn egress_accumulator_distributes_and_clamps() {
        let mut acc = EgressAccumulator::new(4, 100.0);
        acc.add(0.0, 50.0, 100.0);
        assert!((acc.bins()[0] - 50.0).abs() < 1e-12);
        assert!((acc.bins()[1] - 50.0).abs() < 1e-12);
        // Beyond the horizon: everything lands in the last bin.
        acc.add(150.0, 250.0, 40.0);
        assert!((acc.bins()[3] - 40.0).abs() < 1e-12);
        // Degenerate interval: lumped at the start instant.
        acc.add(60.0, 60.0, 7.0);
        assert!((acc.bins()[2] - 7.0).abs() < 1e-12);
        // Zero bytes are a no-op.
        acc.add(0.0, 10.0, 0.0);
        let sum: f64 = acc.bins().iter().sum();
        assert!((sum - 147.0).abs() < 1e-12);
    }

    #[test]
    fn positive_measure_covers_all_slopes() {
        assert_eq!(positive_measure(1.0, 0.0, 5.0), 5.0);
        assert_eq!(positive_measure(-1.0, 0.0, 5.0), 0.0);
        // Crosses zero upward at x=2: positive on (2, 5].
        assert!((positive_measure(-2.0, 1.0, 5.0) - 3.0).abs() < 1e-12);
        // Crosses zero downward at x=2: positive on [0, 2).
        assert!((positive_measure(2.0, -1.0, 5.0) - 2.0).abs() < 1e-12);
        // Entirely positive / entirely negative with slope.
        assert_eq!(positive_measure(1.0, 1.0, 5.0), 5.0);
        assert_eq!(positive_measure(-10.0, 1.0, 5.0), 0.0);
    }

    #[test]
    fn empty_spec_list_yields_empty_metrics() {
        let out = simulate_sessions(&[], 0, |_, _| 1.0, &mut NoCacheHooks, 4);
        assert_eq!(out.metrics.sessions, 0);
        assert_eq!(out.metrics.viewer_seconds, 0.0);
        assert!(out.finals.is_empty());
    }

    #[test]
    fn fault_timeline_is_deterministic_and_well_formed() {
        let model = PathFaultModel {
            mtbf_secs: 300.0,
            mttr_secs: 30.0,
            residual_capacity_fraction: 0.05,
        };
        let a = PathFaultTimeline::generate(8, 10_000.0, model, 42);
        let b = PathFaultTimeline::generate(8, 10_000.0, model, 42);
        assert_eq!(a, b, "same seed must reproduce the same outages");
        let c = PathFaultTimeline::generate(8, 10_000.0, model, 43);
        assert_ne!(a, c, "a different seed must move the outages");
        assert_eq!(a.paths(), 8);
        assert_eq!(a.residual_capacity_fraction(), 0.05);
        let mut saw_outage = false;
        for path in 0..a.paths() {
            let mut prev_end = f64::NEG_INFINITY;
            for &(start, end) in a.outages(path) {
                assert!(start >= prev_end && end >= start && start < 10_000.0);
                prev_end = end;
                saw_outage = true;
            }
        }
        assert!(
            saw_outage,
            "with ~33 expected outages per path, none at all is a generation bug"
        );
        assert!(a.outage_secs_within(10_000.0) > 0.0);
        // Clamping: no outage time is counted before t = 0.
        assert_eq!(a.outage_secs_within(0.0), 0.0);
    }

    #[test]
    fn empty_timeline_is_bitwise_identical_to_no_timeline() {
        let specs = [
            spec(0, 0.0, 100.0, 48_000.0),
            spec(1, 10.0, 200.0, 24_000.0),
            spec(0, 30.0, 60.0, 48_000.0),
        ];
        let plain = simulate_sessions(&specs, 2, |_, _| 40_000.0, &mut NoCacheHooks, 8);
        let empty = PathFaultTimeline::from_outages(vec![Vec::new(), Vec::new()], 0.05);
        let faulted = simulate_sessions_with_faults(
            &specs,
            2,
            |_, _| 40_000.0,
            &mut NoCacheHooks,
            8,
            Some(&empty),
        );
        assert_eq!(plain, faulted);
    }

    #[test]
    fn cached_prefix_masks_an_outage_without_stalling() {
        // The paper's resilience story in one scenario: half the object is
        // cached, and the path is (almost) fully down for the entire first
        // half of playback. The prefix alone covers demand until t = 50 on
        // the half-rate path, so the outage is fully masked; after repair
        // the 96 KB/s path outruns the 48 KB/s drain, so playback never
        // stalls at all.
        struct HalfPrefix;
        impl SessionHooks for HalfPrefix {
            fn on_arrival(&mut self, _i: usize, spec: &SessionSpec, _share: f64) -> f64 {
                spec.size_bytes / 2.0
            }
        }
        let timeline = PathFaultTimeline::from_outages(vec![vec![(0.0, 50.0)]], 0.05);
        let out = simulate_sessions_with_faults(
            &[spec(0, 0.0, 100.0, 48_000.0)],
            1,
            |_, _| 96_000.0,
            &mut HalfPrefix,
            4,
            Some(&timeline),
        );
        let f = &out.finals[0];
        assert_eq!(f.rebuffer_secs, 0.0, "the prefix must mask the outage");
        assert!((out.metrics.masked_stall_secs - 50.0).abs() < 1e-9);
        assert_eq!(out.metrics.outage_secs, 50.0);
        assert_eq!(out.metrics.rebuffer_probability, 0.0);
        // During the outage the session still trickled at the residual
        // share (4.8 KB/s × 50 s), then finished at full capacity.
        assert_eq!(f.downloaded_bytes, 2_400_000.0);
        assert!((f.transfer_end_secs - 72.5).abs() < 1e-9);
    }

    #[test]
    fn without_a_prefix_the_same_outage_stalls_playback() {
        let timeline = PathFaultTimeline::from_outages(vec![vec![(0.0, 50.0)]], 0.05);
        let out = simulate_sessions_with_faults(
            &[spec(0, 0.0, 100.0, 48_000.0)],
            1,
            |_, _| 96_000.0,
            &mut NoCacheHooks,
            4,
            Some(&timeline),
        );
        let f = &out.finals[0];
        assert!(
            f.rebuffer_secs > 40.0,
            "a cold cache cannot mask a 50 s outage, stalled {}",
            f.rebuffer_secs
        );
        assert_eq!(out.metrics.rebuffer_probability, 1.0);
        assert!(out.metrics.masked_stall_secs < 10.0);
    }

    #[test]
    fn worker_with_faults_is_deterministic_and_sees_outages() {
        let healthy = SimulationConfig::small().with_cache_fraction(0.05);
        let mut faulted = healthy;
        faulted.path_faults = Some(PathFaultModel {
            mtbf_secs: 1_200.0,
            mttr_secs: 120.0,
            residual_capacity_fraction: 0.02,
        });
        let a = SessionWorker::new(faulted, 7).run().unwrap();
        let b = SessionWorker::new(faulted, 7).run().unwrap();
        assert_eq!(a, b);
        assert!(a.metrics.outage_secs > 0.0);
        assert!(a.metrics.masked_stall_secs > 0.0);
        let base = SessionWorker::new(healthy, 7).run().unwrap();
        assert_eq!(base.metrics.outage_secs, 0.0);
        assert_eq!(base.metrics.masked_stall_secs, 0.0);
        assert!(
            a.metrics.avg_rebuffer_secs >= base.metrics.avg_rebuffer_secs,
            "outages cannot make rebuffering better: {} vs {}",
            a.metrics.avg_rebuffer_secs,
            base.metrics.avg_rebuffer_secs
        );
    }

    #[test]
    fn worker_runs_and_uses_cache() {
        let config = SimulationConfig {
            policy: PolicyKind::PartialBandwidth,
            variability: VariabilityKind::Constant,
            ..SimulationConfig::small()
        }
        .with_cache_fraction(0.05);
        let result = SessionWorker::new(config, config.seed).run().unwrap();
        assert_eq!(result.metrics.sessions, 5_000);
        assert!(result.final_cache_used_bytes > 0.0);
        assert!(result.final_cached_objects > 0);
        assert!(result.metrics.traffic_reduction_ratio > 0.0);
        assert!(result.metrics.avg_concurrent_viewers > 1.0);
        assert!(result.metrics.peak_concurrent_viewers >= 2);
        assert!((0.0..=1.0).contains(&result.metrics.rebuffer_probability));
        assert_eq!(
            result.metrics.egress_bins_bytes.len(),
            config.session_egress_bins
        );
    }

    #[test]
    fn worker_is_deterministic_and_seed_sensitive() {
        let config = SimulationConfig::small().with_cache_fraction(0.05);
        let a = SessionWorker::new(config, 7).run().unwrap();
        let b = SessionWorker::new(config, 7).run().unwrap();
        assert_eq!(a, b);
        let c = SessionWorker::new(config, 8).run().unwrap();
        assert_ne!(a.metrics, c.metrics);
    }

    #[test]
    fn caching_reduces_rebuffering_in_session_mode() {
        let no_cache = SimulationConfig {
            cache_size_bytes: 0.0,
            ..SimulationConfig::small()
        };
        let with_cache = SimulationConfig::small().with_cache_fraction(0.10);
        let none = SessionWorker::new(no_cache, 1).run().unwrap().metrics;
        let cached = SessionWorker::new(with_cache, 1).run().unwrap().metrics;
        // Rebuffer *probability* is a coarse binary per-session signal (a
        // prefix often shortens a drain without eliminating it), so the
        // strict improvement is asserted on rebuffer time.
        assert!(
            cached.avg_rebuffer_secs < none.avg_rebuffer_secs,
            "cached {} vs none {}",
            cached.avg_rebuffer_secs,
            none.avg_rebuffer_secs
        );
        assert!(cached.rebuffer_probability <= none.rebuffer_probability);
        assert!(cached.origin_bytes_total < none.origin_bytes_total);
        assert_eq!(none.traffic_reduction_ratio, 0.0);
    }
}
