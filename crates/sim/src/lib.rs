//! # sc-sim — simulation of network-aware streaming-media caching
//!
//! A discrete-event-style simulator of the architecture evaluated in
//! *Accelerating Internet Streaming Media Delivery using Network-Aware
//! Partial Caching* (Jin, Bestavros, Iyengar; ICDCS 2002): clients request
//! CBR streaming objects through an edge cache; each object's origin server
//! is reached over a path with its own (possibly time-varying) bandwidth;
//! the cache runs one of the replacement policies from [`sc_cache`]; and
//! requests are delivered jointly from the cache and the origin.
//!
//! The crate provides:
//!
//! * [`SimulationConfig`] / [`run_simulation`] / [`run_replicated`] — single
//!   runs and replicated (seed-averaged) runs;
//! * [`exec`] — the parallel execution layer: replicated runs, comparisons
//!   and sweeps shard their independent `(configuration, seed)` grid across
//!   threads (`SC_SIM_THREADS`, default = available parallelism) and merge
//!   in deterministic seed order, so results are byte-identical to a
//!   sequential run;
//! * [`BandwidthModel`] — the temporal structure of path bandwidth:
//!   i.i.d. per-request ratios or a mean-reverting AR(1) evolution
//!   ([`sc_netmodel::BandwidthTimeSeries`]) sampled on the simulation
//!   clock;
//! * [`EstimatorKind`] — what the caching algorithm knows about each path:
//!   an oracle long-run mean, passive EWMA/windowed measurement, or active
//!   probing;
//! * [`Metrics`] — the paper's four metrics (traffic-reduction ratio,
//!   average service delay, average stream quality, total added value);
//! * [`sweep`] — cache-size, estimator and Zipf-α parameter sweeps;
//! * [`experiments`] — one driver per table/figure of the paper
//!   (`table1`, `fig5` … `fig12`, plus the `fig13` estimator-staleness
//!   study), each returning a [`FigureResult`].
//!
//! ```
//! use sc_cache::policy::PolicyKind;
//! use sc_sim::{run_simulation, SimulationConfig};
//!
//! # fn main() -> Result<(), sc_sim::SimError> {
//! let config = SimulationConfig {
//!     policy: PolicyKind::PartialBandwidth,
//!     ..SimulationConfig::small()
//! }
//! .with_cache_fraction(0.05);
//! let result = run_simulation(&config)?;
//! assert!(result.metrics.traffic_reduction_ratio > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bandwidth;
mod config;
mod delivery;
pub mod event;
pub mod exec;
pub mod experiments;
mod metrics;
mod report;
mod runner;
pub mod session;
pub mod sweep;

pub use bandwidth::{BandwidthProvider, EstimatorBank};
pub use config::{
    BandwidthModel, EstimatorKind, PathFaultModel, SimError, SimulationConfig, VariabilityKind,
};
pub use delivery::{deliver, DeliveryOutcome};
pub use event::{Event, EventKind, EventQueue};
pub use exec::{ExecConfig, ParallelExecutor, SharedWorkload, SimWorker};
pub use metrics::{Metrics, MetricsCollector, SessionMetrics};
pub use report::{
    FigurePoint, FigureResult, FigureSeries, SessionFigurePoint, SessionFigureResult,
    SessionFigureSeries,
};
pub use runner::{
    run_comparison, run_comparison_with, run_replicated, run_replicated_with,
    run_session_comparison, run_session_comparison_with, run_sessions, run_sessions_replicated,
    run_sessions_replicated_with, run_simulation, RunResult,
};
pub use session::{
    run_session_grid, simulate_sessions, simulate_sessions_with_faults, NoCacheHooks,
    PathFaultTimeline, SessionFinal, SessionHooks, SessionRunResult, SessionSimOutput, SessionSpec,
    SessionState, SessionWorker,
};
