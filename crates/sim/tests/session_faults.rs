//! Determinism of fault injection in the session simulator.
//!
//! The resilience layer's contract is the same as the core's: a run is a
//! pure function of `(configuration, seed)`, byte-identical at any
//! `SC_SIM_THREADS`. These tests pin that contract with outages enabled —
//! the outage timeline is pre-generated per run from a derived seed, so
//! parallelism must not be able to move a single event.

use sc_cache::policy::PolicyKind;
use sc_sim::exec::{ExecConfig, ParallelExecutor};
use sc_sim::session::run_session_grid;
use sc_sim::{PathFaultModel, SessionWorker, SimulationConfig};

fn faulted_config(policy: PolicyKind) -> SimulationConfig {
    let mut config = SimulationConfig {
        policy,
        ..SimulationConfig::small()
    }
    .with_cache_fraction(0.05);
    config.path_faults = Some(PathFaultModel {
        mtbf_secs: 1_200.0,
        mttr_secs: 90.0,
        residual_capacity_fraction: 0.02,
    });
    config
}

#[test]
fn faulted_grid_is_byte_identical_across_thread_counts() {
    let configs = [
        faulted_config(PolicyKind::PartialBandwidth),
        faulted_config(PolicyKind::Lru),
    ];
    let baseline = run_session_grid(
        &configs,
        2,
        &ParallelExecutor::new(ExecConfig::sequential()),
    )
    .unwrap();
    assert!(baseline.iter().all(|m| m.outage_secs > 0.0));
    for threads in [4, 32] {
        let parallel = run_session_grid(
            &configs,
            2,
            &ParallelExecutor::new(ExecConfig::with_threads(threads)),
        )
        .unwrap();
        assert_eq!(
            baseline, parallel,
            "fault-injected grid diverged at {threads} threads"
        );
    }
}

#[test]
fn fault_injection_is_seed_sensitive_but_reproducible() {
    let config = faulted_config(PolicyKind::PartialBandwidth);
    let a = SessionWorker::new(config, 11).run().unwrap();
    let b = SessionWorker::new(config, 11).run().unwrap();
    assert_eq!(a, b);
    let c = SessionWorker::new(config, 12).run().unwrap();
    assert_ne!(a.metrics, c.metrics);
    // A different seed draws a different outage realisation.
    assert_ne!(a.metrics.outage_secs, c.metrics.outage_secs);
}

#[test]
fn enabling_faults_leaves_the_workload_and_bandwidth_untouched() {
    // The fault seed is decoupled from workload and bandwidth generation:
    // the same sessions arrive and the same healthy capacities are drawn,
    // so cache-independent aggregates (viewer curve, total demand) match
    // the fault-free run exactly.
    let healthy = SimulationConfig::small().with_cache_fraction(0.05);
    let faulted = faulted_config(healthy.policy);
    let h = SessionWorker::new(healthy, 5).run().unwrap().metrics;
    let f = SessionWorker::new(faulted, 5).run().unwrap().metrics;
    assert_eq!(h.sessions, f.sessions);
    // The viewer-curve integral is the same quantity, but fault events add
    // integration boundaries, so it matches only up to float rounding.
    assert!((h.viewer_seconds - f.viewer_seconds).abs() / h.viewer_seconds < 1e-9);
    assert_eq!(h.peak_concurrent_viewers, f.peak_concurrent_viewers);
    assert_eq!(h.horizon_secs, f.horizon_secs);
    // And the outage really degraded the experience.
    assert!(f.outage_secs > 0.0);
    assert!(f.avg_rebuffer_secs >= h.avg_rebuffer_secs);
}
