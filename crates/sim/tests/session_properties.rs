//! Conservation properties of the session event core.
//!
//! Where `session_reference.rs` checks the core against an independent
//! implementation, these tests check it against *invariants* that hold for
//! any fluid processor-sharing system, on randomized scenarios and on the
//! full workload-driven session mode:
//!
//! * the concurrent-viewer curve integrates to the sum of session
//!   durations (every viewer is present for exactly its playback window);
//! * the rebuffer probability is a probability, and is exactly zero when
//!   every path's capacity covers its aggregate encoding rate;
//! * the origin egress curve sums to the total origin bytes (no traffic
//!   is lost or double-counted by the binning).

use sc_sim::experiments::ExperimentScale;
use sc_sim::session::{simulate_sessions, NoCacheHooks, SessionSpec};
use sc_sim::{run_sessions, SimulationConfig};

struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

fn random_specs(seed: u64, n_paths: usize) -> Vec<SessionSpec> {
    let mut rng = Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed | 1));
    let n_sessions = 15 + rng.below(40) as usize;
    let mut specs: Vec<SessionSpec> = (0..n_sessions)
        .map(|_| {
            let duration = 20.0 + rng.below(10) as f64 * 10.0;
            let rate = 16_000.0 * (1 + rng.below(4)) as f64;
            SessionSpec {
                path: rng.below(n_paths as u64) as u32,
                arrival_secs: rng.below(200) as f64 * 0.5,
                duration_secs: duration,
                rate_bps: rate,
                size_bytes: duration * rate,
            }
        })
        .collect();
    specs.sort_by(|a, b| a.arrival_secs.total_cmp(&b.arrival_secs));
    specs
}

fn assert_close(actual: f64, expected: f64, what: &str) {
    let scale = expected.abs().max(1.0);
    assert!(
        (actual - expected).abs() <= 1e-9 * scale,
        "{what}: got {actual}, expected {expected}"
    );
}

#[test]
fn viewer_curve_integrates_to_sum_of_session_durations() {
    for seed in 0..12 {
        let specs = random_specs(seed, 3);
        let out = simulate_sessions(
            &specs,
            3,
            |p, _| 20_000.0 * (p + 1) as f64,
            &mut NoCacheHooks,
            10,
        );
        let total_duration: f64 = specs.iter().map(|s| s.duration_secs).sum();
        assert_close(
            out.metrics.viewer_seconds,
            total_duration,
            &format!("viewer-seconds integral, seed {seed}"),
        );
        assert_close(
            out.metrics.avg_concurrent_viewers,
            total_duration / out.metrics.horizon_secs,
            &format!("average viewers, seed {seed}"),
        );
        assert!(out.metrics.peak_concurrent_viewers as usize <= specs.len());
    }
}

#[test]
fn rebuffer_probability_is_a_probability_and_zero_under_ample_capacity() {
    for seed in 0..12 {
        let specs = random_specs(seed, 2);
        // Scarce capacity: the probability must still be a probability.
        let scarce = simulate_sessions(&specs, 2, |_, _| 9_000.0, &mut NoCacheHooks, 10);
        assert!(
            (0.0..=1.0).contains(&scarce.metrics.rebuffer_probability),
            "seed {seed}: {}",
            scarce.metrics.rebuffer_probability
        );

        // Ample capacity: each path can serve every one of its sessions at
        // the path's highest encoding rate simultaneously, so every share
        // stays at or above every member's rate and no deficit can ever
        // open up. (Capacity equal to the *sum* of rates is not enough
        // with heterogeneous rates: an equal share can still starve the
        // highest-rate session.)
        let ample_cap: [f64; 2] = [0, 1].map(|p| {
            let on_path: Vec<_> = specs.iter().filter(|s| s.path == p as u32).collect();
            let max_rate = on_path.iter().map(|s| s.rate_bps).fold(0.0, f64::max);
            (on_path.len() as f64 * max_rate).max(1.0)
        });
        let ample = simulate_sessions(&specs, 2, |p, _| ample_cap[p], &mut NoCacheHooks, 10);
        let max_rebuf = ample
            .finals
            .iter()
            .map(|f| f.rebuffer_secs)
            .fold(0.0, f64::max);
        assert_eq!(
            ample.metrics.rebuffer_probability, 0.0,
            "seed {seed}: rebuffering despite ample capacity (max {max_rebuf:e} s)"
        );
        // Raw per-session stall time may carry float-accumulation dust
        // (compare `rate · Δt` against a sum of `share · dt` segments) —
        // that dust must stay below the epsilon the probability uses.
        assert!(max_rebuf <= sc_sim::session::REBUFFER_EPSILON_SECS);
        assert!(ample.metrics.avg_rebuffer_secs <= sc_sim::session::REBUFFER_EPSILON_SECS);
    }
}

#[test]
fn egress_curve_sums_to_total_origin_bytes() {
    for seed in 0..12u64 {
        let specs = random_specs(seed + 100, 3);
        let out = simulate_sessions(&specs, 3, |_, _| 30_000.0, &mut NoCacheHooks, 7);
        let binned: f64 = out.metrics.egress_bins_bytes.iter().sum();
        assert_close(
            binned,
            out.metrics.origin_bytes_total,
            &format!("egress bins, seed {seed}"),
        );
        // With no cache every origin byte is a session byte.
        let total_size: f64 = specs.iter().map(|s| s.size_bytes).sum();
        assert_close(out.metrics.origin_bytes_total, total_size, "origin bytes");
        assert_eq!(out.metrics.traffic_reduction_ratio, 0.0);
    }
}

#[test]
fn workload_driven_session_mode_upholds_the_same_invariants() {
    // The full pipeline — workload generation, cache, estimators, AR(1)
    // bandwidth — must preserve the conservation properties too.
    let config = SimulationConfig {
        seed: 7,
        ..ExperimentScale::Test.base_config().with_cache_fraction(0.1)
    };
    let metrics = run_sessions(&config).unwrap().metrics;

    assert!(metrics.sessions > 0);
    assert!((0.0..=1.0).contains(&metrics.rebuffer_probability));
    assert!((0.0..=1.0).contains(&metrics.traffic_reduction_ratio));
    assert!(metrics.avg_rebuffer_secs >= 0.0);
    assert!(metrics.peak_concurrent_viewers >= 1);
    assert!(metrics.avg_concurrent_viewers > 0.0);

    let binned: f64 = metrics.egress_bins_bytes.iter().sum();
    assert_close(binned, metrics.origin_bytes_total, "egress bins");

    // viewer_seconds == Σ durations also holds here, but durations live
    // inside the generated workload; check the derived identity instead.
    assert_close(
        metrics.avg_concurrent_viewers,
        metrics.viewer_seconds / metrics.horizon_secs,
        "viewer identity",
    );
}
