//! Naive fluid reference model for the session event core.
//!
//! The discrete-event core (`sc_sim::session`) earns its speed from
//! incremental bookkeeping: a binary heap with tombstoned cancellations,
//! per-path member lists, and cached shares. This reference model keeps
//! none of that — pending events live in a flat list popped by linear
//! `(time, seq)` scan, path membership is recomputed from scratch at every
//! event by scanning all sessions, and every re-division recomputes the
//! share from the capacity and the fresh member count. Only the
//! per-session integration arithmetic (`SessionState::advance`) and the
//! event scheduling *order* are shared, so a bitwise match isolates the
//! core's heap and path bookkeeping as the only thing under test — the
//! same role `model_fuzz.rs` plays for the slab cache engine.

use sc_cache::policy::{PolicyKind, UtilityPolicy};
use sc_cache::{CacheEngine, ObjectKey, ObjectMeta};
use sc_sim::session::{simulate_sessions, SessionHooks, SessionSpec, SessionState};
use sc_sim::{EstimatorBank, EstimatorKind, EventKind};

/// The event core's egress bins are part of the bitwise contract, so the
/// reference re-derives them through the same public accumulator.
use sc_sim::session::EgressAccumulator;

// ---------------------------------------------------------------------------
// The naive reference simulator
// ---------------------------------------------------------------------------

struct RefEvent {
    time: f64,
    seq: u64,
    kind: EventKind,
}

struct RefOutput {
    states: Vec<SessionState>,
    viewer_seconds: f64,
    peak_viewers: u64,
    egress_bins: Vec<f64>,
}

/// O(events × sessions) fluid simulation: same event order, same
/// arithmetic, zero shared bookkeeping with the event core.
fn reference_simulate<H: SessionHooks>(
    specs: &[SessionSpec],
    capacity: impl Fn(usize, f64) -> f64,
    hooks: &mut H,
    egress_bins: usize,
) -> RefOutput {
    let horizon = specs
        .iter()
        .map(|s| s.arrival_secs + s.duration_secs)
        .fold(0.0_f64, f64::max);
    let mut egress = EgressAccumulator::new(egress_bins, horizon);

    // Arrivals are pre-scheduled in spec order: seq == spec index, exactly
    // as the core pushes them.
    let mut pending: Vec<RefEvent> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| RefEvent {
            time: s.arrival_secs,
            seq: i as u64,
            kind: EventKind::Arrival(i as u32),
        })
        .collect();
    let mut next_seq = specs.len() as u64;

    let mut states: Vec<SessionState> = Vec::new();
    let mut completion_seq: Vec<Option<u64>> = Vec::new();
    let mut viewers: u64 = 0;
    let mut peak_viewers: u64 = 0;
    let mut viewer_seconds = 0.0;
    let mut last_t = 0.0;

    // Fresh ascending scan instead of the core's maintained member lists.
    let members_of = |states: &[SessionState], path: u32| -> Vec<usize> {
        states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.transferring && s.spec.path == path)
            .map(|(i, _)| i)
            .collect()
    };

    // Linear-scan pop of the minimum (time, seq) — no heap.
    while let Some(pos) = pending
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.time.total_cmp(&b.1.time).then(a.1.seq.cmp(&b.1.seq)))
        .map(|(i, _)| i)
    {
        let ev = pending.remove(pos);
        viewer_seconds += viewers as f64 * (ev.time - last_t);
        last_t = ev.time;
        let now = ev.time;

        match ev.kind {
            EventKind::Arrival(_) => {
                let index = ev.seq as usize;
                let spec = &specs[index];
                let path = spec.path;
                let cap = capacity(path as usize, now);
                let old_members = members_of(&states, path);
                let share_if_joined = cap / (old_members.len() + 1) as f64;
                let prefix = hooks.on_arrival(index, spec, share_if_joined);

                let mut state = SessionState::begin(*spec, prefix);
                viewers += 1;
                peak_viewers = peak_viewers.max(viewers);
                pending.push(RefEvent {
                    time: spec.arrival_secs + spec.duration_secs,
                    seq: next_seq,
                    kind: EventKind::PlaybackEnd(index as u32),
                });
                next_seq += 1;

                if state.origin_bytes > 0.0 {
                    state.transferring = true;
                    for &m in &old_members {
                        states[m].advance(now, &mut egress);
                    }
                    states.push(state);
                    completion_seq.push(None);
                    let members = members_of(&states, path);
                    let share = cap / members.len() as f64;
                    for &m in &members {
                        states[m].share_bps = share;
                        if let Some(seq) = completion_seq[m].take() {
                            pending.retain(|e| e.seq != seq);
                        }
                        let completes = now + states[m].remaining_bytes() / share;
                        pending.push(RefEvent {
                            time: completes,
                            seq: next_seq,
                            kind: EventKind::TransferComplete(m as u32),
                        });
                        completion_seq[m] = Some(next_seq);
                        next_seq += 1;
                    }
                } else {
                    state.transfer_end_secs = now;
                    states.push(state);
                    completion_seq.push(None);
                }
            }
            EventKind::TransferComplete(s) => {
                let index = s as usize;
                completion_seq[index] = None;
                let path = states[index].spec.path;
                for m in members_of(&states, path) {
                    states[m].advance(now, &mut egress);
                }
                let state = &mut states[index];
                state.downloaded_bytes = state.origin_bytes;
                state.transferring = false;
                state.share_bps = 0.0;
                state.transfer_end_secs = now;
                let elapsed = now - state.spec.arrival_secs;
                let origin = state.origin_bytes;
                let spec = state.spec;
                if elapsed > 0.0 {
                    hooks.on_transfer_complete(index, &spec, origin / elapsed);
                }
                let members = members_of(&states, path);
                if !members.is_empty() {
                    let cap = capacity(path as usize, now);
                    let share = cap / members.len() as f64;
                    for &m in &members {
                        states[m].share_bps = share;
                        if let Some(seq) = completion_seq[m].take() {
                            pending.retain(|e| e.seq != seq);
                        }
                        let completes = now + states[m].remaining_bytes() / share;
                        pending.push(RefEvent {
                            time: completes,
                            seq: next_seq,
                            kind: EventKind::TransferComplete(m as u32),
                        });
                        completion_seq[m] = Some(next_seq);
                        next_seq += 1;
                    }
                }
            }
            EventKind::PlaybackEnd(s) => {
                states[s as usize].advance(now, &mut egress);
                viewers -= 1;
            }
            // The reference model replays the fault-free contract only;
            // outage events are never scheduled here.
            EventKind::PathDown(_) | EventKind::PathUp(_) => unreachable!(),
        }
    }

    RefOutput {
        states,
        viewer_seconds,
        peak_viewers,
        egress_bins: egress.into_bins(),
    }
}

// ---------------------------------------------------------------------------
// Scenario generation (self-contained LCG: no dependence on the rand shim)
// ---------------------------------------------------------------------------

struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

struct Scenario {
    specs: Vec<SessionSpec>,
    /// Per-path (duration, rate, capacity) — one "object" per path.
    paths: Vec<(f64, f64, f64)>,
}

/// Small randomized scenario with quantized times so simultaneous events
/// (arrival/arrival and arrival/completion ties) actually occur.
fn random_scenario(seed: u64) -> Scenario {
    let mut rng = Lcg(seed.wrapping_mul(2654435761).wrapping_add(1));
    let n_paths = 2 + rng.below(4) as usize;
    let paths: Vec<(f64, f64, f64)> = (0..n_paths)
        .map(|_| {
            let duration = 30.0 + rng.below(8) as f64 * 15.0;
            let rate = 24_000.0 * (1 + rng.below(3)) as f64;
            let capacity = 16_000.0 * (1 + rng.below(6)) as f64;
            (duration, rate, capacity)
        })
        .collect();
    let n_sessions = 20 + rng.below(30) as usize;
    let mut arrivals: Vec<(f64, u32)> = (0..n_sessions)
        .map(|_| {
            // Half-second grid over 60 s: with 20+ sessions, ties are
            // effectively guaranteed.
            let t = rng.below(120) as f64 * 0.5;
            let p = rng.below(n_paths as u64) as u32;
            (t, p)
        })
        .collect();
    arrivals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let specs = arrivals
        .into_iter()
        .map(|(t, p)| {
            let (duration, rate, _) = paths[p as usize];
            SessionSpec {
                path: p,
                arrival_secs: t,
                duration_secs: duration,
                rate_bps: rate,
                size_bytes: duration * rate,
            }
        })
        .collect();
    Scenario { specs, paths }
}

// ---------------------------------------------------------------------------
// Cache hooks shared (by construction, not by instance) between the two
// models
// ---------------------------------------------------------------------------

struct TestCacheHooks {
    cache: CacheEngine<Box<dyn UtilityPolicy + Send + Sync>>,
    estimators: EstimatorBank,
    metas: Vec<ObjectMeta>,
    means: Vec<f64>,
}

impl TestCacheHooks {
    fn new(policy: PolicyKind, scenario: &Scenario, cache_fraction: f64) -> Self {
        let metas: Vec<ObjectMeta> = scenario
            .paths
            .iter()
            .enumerate()
            .map(|(i, &(duration, rate, _))| {
                ObjectMeta::new(ObjectKey::new(i as u64), duration, rate, 1.0 + i as f64)
            })
            .collect();
        let total: f64 = metas.iter().map(|m| m.size_bytes()).sum();
        let mut cache =
            CacheEngine::new(cache_fraction * total, policy.build()).expect("valid cache");
        cache.ensure_slots(metas.len());
        let means = scenario.paths.iter().map(|&(_, _, cap)| cap).collect();
        TestCacheHooks {
            cache,
            estimators: EstimatorBank::new(EstimatorKind::Ewma { alpha: 0.3 }, metas.len()),
            metas,
            means,
        }
    }
}

impl SessionHooks for TestCacheHooks {
    fn on_arrival(&mut self, _index: usize, spec: &SessionSpec, share_bps: f64) -> f64 {
        let p = spec.path as usize;
        let estimated = self.estimators.decision_bps(p, self.means[p], share_bps);
        self.cache
            .on_access_slot(spec.path, &self.metas[p], estimated)
            .cached_bytes_before
    }

    fn on_transfer_complete(&mut self, _index: usize, spec: &SessionSpec, throughput_bps: f64) {
        self.estimators
            .observe_transfer(spec.path as usize, throughput_bps);
    }
}

// ---------------------------------------------------------------------------
// The bitwise cross-check
// ---------------------------------------------------------------------------

fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "{what}: core {a} vs reference {b}"
    );
}

fn cross_check(scenario: &Scenario, policy: PolicyKind, bins: usize) {
    let capacity = |p: usize, _t: f64| scenario.paths[p].2;

    let mut core_hooks = TestCacheHooks::new(policy, scenario, 0.3);
    let core = simulate_sessions(
        &scenario.specs,
        scenario.paths.len(),
        capacity,
        &mut core_hooks,
        bins,
    );

    let mut ref_hooks = TestCacheHooks::new(policy, scenario, 0.3);
    let reference = reference_simulate(&scenario.specs, capacity, &mut ref_hooks, bins);

    assert_eq!(core.finals.len(), reference.states.len());
    for (i, (f, s)) in core.finals.iter().zip(&reference.states).enumerate() {
        assert_bits(
            f.prefix_bytes,
            s.prefix_bytes,
            &format!("session {i} prefix"),
        );
        assert_bits(
            f.downloaded_bytes,
            s.downloaded_bytes,
            &format!("session {i} downloaded"),
        );
        assert_bits(
            f.rebuffer_secs,
            s.rebuffer_secs,
            &format!("session {i} rebuffer"),
        );
        assert_bits(
            f.transfer_end_secs,
            s.transfer_end_secs,
            &format!("session {i} transfer end"),
        );
    }

    // Aggregates, re-derived from the reference states with the same
    // in-order summation the core's metrics use.
    let m = &core.metrics;
    assert_eq!(m.sessions as usize, reference.states.len());
    assert_bits(m.viewer_seconds, reference.viewer_seconds, "viewer seconds");
    assert_eq!(m.peak_concurrent_viewers, reference.peak_viewers);
    let ref_rebuffered = reference
        .states
        .iter()
        .filter(|s| s.rebuffer_secs > sc_sim::session::REBUFFER_EPSILON_SECS)
        .count();
    assert_bits(
        m.rebuffer_probability,
        ref_rebuffered as f64 / reference.states.len() as f64,
        "rebuffer probability",
    );
    let ref_origin: f64 = reference.states.iter().map(|s| s.downloaded_bytes).sum();
    assert_bits(m.origin_bytes_total, ref_origin, "origin bytes");
    assert_eq!(m.egress_bins_bytes.len(), reference.egress_bins.len());
    for (i, (a, b)) in m
        .egress_bins_bytes
        .iter()
        .zip(&reference.egress_bins)
        .enumerate()
    {
        assert_bits(*a, *b, &format!("egress bin {i}"));
    }
}

#[test]
fn event_core_matches_naive_reference_across_policies_and_seeds() {
    for policy in [
        PolicyKind::PartialBandwidth,
        PolicyKind::IntegralBandwidth,
        PolicyKind::Lru,
    ] {
        for seed in 0..8 {
            let scenario = random_scenario(seed);
            cross_check(&scenario, policy, 12);
        }
    }
}

#[test]
fn simultaneous_arrival_and_departure_ties_match_bitwise() {
    // Path capacity 48 KB/s, object 30 s × 48 KB/s: a session alone
    // finishes its transfer exactly 30 s after arrival — and its playback
    // window ends at the same instant. A second session arriving exactly
    // then makes the completion, the playback end, and the arrival
    // simultaneous; two more simultaneous arrivals at t = 60 pile a
    // three-way arrival tie on top of the resulting completions.
    let spec = |t: f64| SessionSpec {
        path: 0,
        arrival_secs: t,
        duration_secs: 30.0,
        rate_bps: 48_000.0,
        size_bytes: 30.0 * 48_000.0,
    };
    let scenario = Scenario {
        specs: vec![spec(0.0), spec(30.0), spec(60.0), spec(60.0), spec(60.0)],
        paths: vec![(30.0, 48_000.0, 48_000.0)],
    };
    for policy in [
        PolicyKind::PartialBandwidth,
        PolicyKind::IntegralBandwidth,
        PolicyKind::Lru,
    ] {
        cross_check(&scenario, policy, 6);
    }
}

#[test]
fn reference_agrees_on_multi_path_tie_scenarios() {
    // Two paths with identical timing grids: every arrival instant carries
    // a tie across paths, exercising the (time, seq) order between events
    // whose handlers touch disjoint state.
    let spec = |p: u32, t: f64| SessionSpec {
        path: p,
        arrival_secs: t,
        duration_secs: 45.0,
        rate_bps: 24_000.0,
        size_bytes: 45.0 * 24_000.0,
    };
    let scenario = Scenario {
        specs: vec![
            spec(0, 0.0),
            spec(1, 0.0),
            spec(0, 15.0),
            spec(1, 15.0),
            spec(0, 15.0),
            spec(1, 30.0),
        ],
        paths: vec![(45.0, 24_000.0, 40_000.0), (45.0, 24_000.0, 20_000.0)],
    };
    for policy in [
        PolicyKind::PartialBandwidth,
        PolicyKind::IntegralBandwidth,
        PolicyKind::Lru,
    ] {
        cross_check(&scenario, policy, 9);
    }
}
