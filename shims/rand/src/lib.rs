//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim provides the (small) slice of `rand` the workspace actually
//! uses — [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`] — backed by a real, statistically solid generator:
//! xoshiro256++ seeded through SplitMix64 (the seeding scheme the upstream
//! `rand_xoshiro` crate uses as well).
//!
//! The stream produced for a given seed is stable: simulation results are
//! reproducible across runs and platforms, which the workspace's golden
//! regression tests rely on. It intentionally does **not** match upstream
//! `StdRng`'s stream (upstream documents its stream as unstable anyway).
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let u: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&u));
//! let d = rng.gen_range(1..=6);
//! assert!((1..=6).contains(&d));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::from_rng(rng);
        let v = self.start + u * (self.end - self.start);
        // `start + u*(end-start)` can round up to exactly `end` even though
        // u < 1; enforce the half-open contract like upstream does.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        // Treat the inclusive upper bound like upstream: the probability of
        // drawing exactly `end` is negligible but permitted.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free bounded sampling is overkill
                // here; modulo bias is < 2^-64 * span, far below anything the
                // workspace's statistical tests can resolve.
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The core of a random number generator: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream `StdRng` stream, but a generator of comparable
    /// statistical quality with a stable, documented stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2018).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn f64_uniform_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.002, "var {var}");
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..10_000 {
            let d = rng.gen_range(0..6usize);
            seen[d] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(5..=7u64);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
            let y = rng.gen_range(1.0..=10.0);
            assert!((1.0..=10.0).contains(&y));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }
}
