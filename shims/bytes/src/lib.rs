//! Offline drop-in subset of the [`bytes`](https://crates.io/crates/bytes)
//! crate: an immutable, cheaply cloneable byte buffer.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the slice of the `Bytes` API the workspace uses — construction from
//! vectors and static slices, cheap clones, `slice`, and `Deref` to
//! `[u8]` — backed by an `Arc<[u8]>` plus an offset window, which preserves
//! the upstream crate's O(1) clone/slice behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static byte slice.
    ///
    /// Unlike upstream `bytes`, this copies the slice into a fresh
    /// allocation (the shim has no borrowed-buffer variant); subsequent
    /// clones and slices are still O(1).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-window of the buffer without copying.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(Bytes::from_static(b"hi").len(), 2);
    }

    #[test]
    fn slicing_windows_without_copy() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
        assert_eq!(b.slice(..).len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_slice_panics() {
        let b = Bytes::from(vec![1, 2]);
        let _ = b.slice(0..3);
    }

    #[test]
    fn equality_ignores_windowing() {
        let a = Bytes::from(vec![9, 1, 2, 9]).slice(1..3);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
    }
}
