//! Offline drop-in subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking API.
//!
//! The build environment has no access to crates.io, so this shim lets the
//! workspace's `benches/` targets compile and run without the real crate.
//! It is a genuine (if simple) wall-clock harness: every benchmark closure
//! is warmed up, then timed over enough iterations to fill a measurement
//! window, and the mean time per iteration is printed. It performs no
//! statistical analysis, outlier rejection, or HTML reporting — for those,
//! swap the workspace dependency back to the real `criterion` once a
//! registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for benchmark code.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    measure_for: Duration,
    last: Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring for the configured
    /// window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for ~1/5 of the window to stabilise caches and
        // estimate per-iteration cost.
        let warmup_window = self.measure_for / 5;
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_window {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        let iterations = ((self.measure_for.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);

        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.last = Some(Measurement {
            iterations,
            total: start.elapsed(),
        });
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Per-group measurement window; falls back to the driver default so a
    /// `measurement_time` call never leaks into later groups.
    measure_for: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the target sample count. Accepted for API compatibility; the
    /// shim sizes its measurement window from wall-clock time instead.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window for subsequent benchmarks in this group
    /// only (as in real criterion).
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.measure_for = Some(window);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<O, R: FnMut(&mut Bencher) -> O>(
        &mut self,
        id: impl fmt::Display,
        mut routine: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let window = self.measure_for.unwrap_or(self.criterion.measure_for);
        self.criterion.run_one(&full, window, self.throughput, |b| {
            routine(b);
        });
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, O, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        I: ?Sized,
        R: FnMut(&mut Bencher, &I) -> O,
    {
        let full = format!("{}/{}", self.name, id);
        let window = self.measure_for.unwrap_or(self.criterion.measure_for);
        self.criterion.run_one(&full, window, self.throughput, |b| {
            routine(b, input);
        });
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the default window short: the shim's goal is a usable number
        // per benchmark in seconds, not criterion-grade precision.
        let millis = std::env::var("CRITERION_SHIM_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            measure_for: Duration::from_millis(millis),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            measure_for: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<O, R: FnMut(&mut Bencher) -> O>(
        &mut self,
        id: impl fmt::Display,
        mut routine: R,
    ) -> &mut Self {
        let window = self.measure_for;
        self.run_one(&id.to_string(), window, None, |b| {
            routine(b);
        });
        self
    }

    fn run_one(
        &mut self,
        full_name: &str,
        window: Duration,
        throughput: Option<Throughput>,
        mut routine: impl FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher {
            measure_for: window,
            last: None,
        };
        routine(&mut bencher);
        match bencher.last {
            Some(m) => {
                let per_iter = m.total.as_secs_f64() / m.iterations as f64;
                let mut line = format!(
                    "{full_name:<60} {:>12.3} us/iter ({} iters)",
                    per_iter * 1e6,
                    m.iterations
                );
                match throughput {
                    Some(Throughput::Elements(n)) => {
                        line += &format!(", {:.1} Melem/s", n as f64 / per_iter / 1e6);
                    }
                    Some(Throughput::Bytes(n)) => {
                        line += &format!(", {:.1} MB/s", n as f64 / per_iter / 1e6);
                    }
                    None => {}
                }
                println!("{line}");
            }
            None => println!("{full_name:<60} (no measurement: iter was never called)"),
        }
    }
}

/// Builds a function that runs a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Builds the benchmark `main` entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(10),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("PB").to_string(), "PB");
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group
            .throughput(Throughput::Elements(100))
            .sample_size(10)
            .bench_with_input(BenchmarkId::new("id", 1), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
        group.finish();
    }
}
