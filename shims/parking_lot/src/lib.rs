//! Offline drop-in subset of the
//! [`parking_lot`](https://crates.io/crates/parking_lot) API.
//!
//! The build environment has no access to crates.io, so this shim wraps the
//! standard library's `Mutex` and `RwLock` behind `parking_lot`'s
//! poison-free interface (`lock()` / `read()` / `write()` return guards
//! directly). Lock poisoning is handled the way `parking_lot` behaves: a
//! panic while holding the lock does not poison it for later users, which
//! this shim emulates by recovering the inner guard from a poisoned result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (requires `&mut`,
    /// so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn locks_are_shareable_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
