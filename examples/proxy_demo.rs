//! End-to-end proxy demo: origin server, caching proxy and measuring client
//! on localhost. Shows the cold-vs-warm startup-delay difference that the
//! whole paper is about.
//!
//! Run with:
//!
//! ```text
//! cargo run --example proxy_demo --release
//! ```

use streamcache::proxy::{
    CachingProxy, ObjectSpec, OriginConfig, OriginServer, ProxyConfig, StreamingClient,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three clips at 480 KB/s whose origin path delivers only 160 KB/s.
    let origin = OriginServer::start(OriginConfig {
        objects: vec![
            ObjectSpec::new("news", 240_000, 480_000.0),
            ObjectSpec::new("trailer", 360_000, 480_000.0),
            ObjectSpec::new("lecture", 480_000, 480_000.0),
        ],
        rate_limit_bps: 160_000.0,
    })?;
    println!(
        "origin listening on {} (160 KB/s per connection)",
        origin.addr()
    );

    let proxy = CachingProxy::start(ProxyConfig::new(origin.addr(), 5_000_000.0))?;
    println!("caching proxy (PB policy) on {}", proxy.addr());
    println!();

    let client = StreamingClient::new();
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>12}",
        "object", "fetch", "startup (s)", "thruput KB/s", "prefix KB"
    );
    for name in ["news", "trailer", "lecture"] {
        for label in ["cold", "warm"] {
            let report = client.fetch(proxy.addr(), name)?;
            println!(
                "{:<10} {:>8} {:>14.3} {:>14.1} {:>12.1}",
                name,
                label,
                report.startup_delay_secs,
                report.throughput_bps / 1e3,
                proxy.cached_prefix_len(name) as f64 / 1e3
            );
        }
    }
    println!();
    let stats = proxy.stats();
    println!(
        "proxy stats: {} requests, {:.0} KB from cache, {:.0} KB from origin, {} objects cached, estimated origin bandwidth {:.0} KB/s",
        stats.requests,
        stats.bytes_from_cache as f64 / 1e3,
        stats.bytes_from_origin as f64 / 1e3,
        stats.cached_objects,
        stats.estimated_origin_bps / 1e3
    );
    Ok(())
}
