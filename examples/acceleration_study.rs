//! Acceleration study: how much cache is needed to hide startup delays for
//! a bandwidth-starved catalog, and how the conservative estimator `e`
//! trades traffic reduction against delay (a reduced-scale Figure 9).
//!
//! Run with:
//!
//! ```text
//! cargo run --example acceleration_study --release
//! ```

use streamcache::cache::policy::PolicyKind;
use streamcache::sim::sweep::{sweep_cache_size, sweep_estimator};
use streamcache::sim::{SimulationConfig, VariabilityKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = SimulationConfig {
        variability: VariabilityKind::MeasuredModerate,
        ..SimulationConfig::small()
    };

    println!("-- cache size sweep (PB policy, measured-path variability) --");
    println!(
        "{:>10} {:>10} {:>12} {:>10}",
        "cache", "traffic", "delay(s)", "quality"
    );
    let series = sweep_cache_size(
        &base,
        PolicyKind::PartialBandwidth,
        &[0.005, 0.01, 0.02, 0.05, 0.1, 0.169],
        2,
    )?;
    for point in &series.points {
        println!(
            "{:>10.3} {:>10.4} {:>12.1} {:>10.4}",
            point.x,
            point.metrics.traffic_reduction_ratio,
            point.metrics.avg_service_delay_secs,
            point.metrics.avg_stream_quality
        );
    }

    println!();
    println!("-- estimator sweep at a 5% cache (PB(e), NLANR-like variability) --");
    println!(
        "{:>10} {:>10} {:>12} {:>10}",
        "e", "traffic", "delay(s)", "quality"
    );
    let nlanr = SimulationConfig {
        variability: VariabilityKind::NlanrLike,
        ..SimulationConfig::small()
    };
    for (e, metrics) in sweep_estimator(&nlanr, 0.05, &[0.0, 0.25, 0.5, 0.75, 1.0], false, 2)? {
        println!(
            "{:>10.2} {:>10.4} {:>12.1} {:>10.4}",
            e,
            metrics.traffic_reduction_ratio,
            metrics.avg_service_delay_secs,
            metrics.avg_stream_quality
        );
    }
    println!();
    println!("Lower e caches bigger prefixes: more robust to variability (and more");
    println!("traffic reduction), at the cost of fitting fewer objects in the cache.");
    Ok(())
}
