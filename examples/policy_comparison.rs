//! Policy comparison: IF vs PB vs IB on a synthetic workload, under constant
//! and variable bandwidth (a reduced-scale version of Figures 5, 7 and 8).
//!
//! Run with:
//!
//! ```text
//! cargo run --example policy_comparison --release
//! ```

use streamcache::cache::policy::PolicyKind;
use streamcache::sim::{run_replicated, SimulationConfig, VariabilityKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policies = [
        PolicyKind::IntegralFrequency,
        PolicyKind::PartialBandwidth,
        PolicyKind::IntegralBandwidth,
    ];
    for variability in [VariabilityKind::Constant, VariabilityKind::NlanrLike] {
        println!("== bandwidth model: {} ==", variability.label());
        println!(
            "{:<6} {:>10} {:>12} {:>10} {:>10}",
            "policy", "traffic", "delay(s)", "quality", "hit-ratio"
        );
        for policy in policies {
            let config = SimulationConfig {
                policy,
                variability,
                ..SimulationConfig::small()
            }
            .with_cache_fraction(0.05);
            let metrics = run_replicated(&config, 2)?;
            println!(
                "{:<6} {:>10.4} {:>12.1} {:>10.4} {:>10.4}",
                policy.label(),
                metrics.traffic_reduction_ratio,
                metrics.avg_service_delay_secs,
                metrics.avg_stream_quality,
                metrics.hit_ratio
            );
        }
        println!();
    }
    println!("Expected shape (paper Figures 5 and 7):");
    println!(" * constant bandwidth — PB has the lowest delay and highest quality,");
    println!("   IF the highest traffic reduction;");
    println!(" * high variability  — PB loses its delay advantage to IB.");
    Ok(())
}
