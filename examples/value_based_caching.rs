//! Value-based caching: maximising the revenue of a cache that sells
//! immediate playout (Section 2.6 of the paper; Figures 10–12 reduced).
//!
//! Run with:
//!
//! ```text
//! cargo run --example value_based_caching --release
//! ```

use streamcache::cache::policy::PolicyKind;
use streamcache::cache::{
    exact_value_selection, greedy_value_selection, total_value, ObjectKey, ObjectMeta,
    OfflineObject,
};
use streamcache::sim::{run_replicated, SimulationConfig, VariabilityKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline: greedy vs exact knapsack on a small hand-built catalog.
    let objects: Vec<OfflineObject> = (0..12u64)
        .map(|i| {
            let duration = 300.0 + 120.0 * i as f64;
            let bandwidth = 12_000.0 + 3_000.0 * (i % 5) as f64;
            let value = 1.0 + (i % 10) as f64;
            OfflineObject::new(
                ObjectMeta::new(ObjectKey::new(i), duration, 48_000.0, value),
                1.0 + (i % 3) as f64,
                bandwidth,
            )
        })
        .collect();
    let capacity = 60e6;
    let greedy = greedy_value_selection(&objects, capacity)?;
    let exact = exact_value_selection(&objects, capacity, 10_000)?;
    println!(
        "offline knapsack: greedy value rate = {:.1} $/s, exact DP = {:.1} $/s",
        total_value(&objects, &greedy)?,
        total_value(&objects, &exact)?
    );
    println!();

    // Online: IF vs PB-V vs IB-V on a synthetic workload.
    println!(
        "{:<6} {:>10} {:>16}",
        "policy", "traffic", "total value ($)"
    );
    for policy in [
        PolicyKind::IntegralFrequency,
        PolicyKind::PartialBandwidthValue { e: 1.0 },
        PolicyKind::PartialBandwidthValue { e: 0.5 },
        PolicyKind::IntegralBandwidthValue,
    ] {
        let config = SimulationConfig {
            policy,
            variability: VariabilityKind::MeasuredModerate,
            ..SimulationConfig::small()
        }
        .with_cache_fraction(0.05);
        let metrics = run_replicated(&config, 2)?;
        println!(
            "{:<6} {:>10.4} {:>16.1}",
            policy.label(),
            metrics.traffic_reduction_ratio,
            metrics.total_added_value
        );
    }
    println!();
    println!("Paper Figures 10–12: PB-V maximises added value, IF maximises traffic");
    println!("reduction, IB-V balances both; under variability a conservative");
    println!("estimator (e ≈ 0.5) beats the exact prefix.");
    Ok(())
}
