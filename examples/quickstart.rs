//! Quickstart: how network-aware partial caching accelerates one stream.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use streamcache::cache::policy::{IntegralFrequency, PartialBandwidth};
use streamcache::cache::{CacheEngine, ObjectKey, ObjectMeta};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 30-minute clip encoded at 48 KB/s (≈ 86 MB), whose origin server is
    // reachable at only 16 KB/s — a third of the required rate.
    let clip = ObjectMeta::new(ObjectKey::new(1), 1_800.0, 48_000.0, 0.0);
    let bandwidth = 16_000.0;

    println!("object size        : {:>10.1} MB", clip.size_bytes() / 1e6);
    println!("bit-rate           : {:>10.1} KB/s", clip.bitrate_bps / 1e3);
    println!("path bandwidth     : {:>10.1} KB/s", bandwidth / 1e3);
    println!(
        "delay without cache: {:>10.1} s",
        clip.service_delay(bandwidth, 0.0)
    );
    println!(
        "quality w/o cache  : {:>10.2}",
        clip.quality(bandwidth, 0.0)
    );
    println!();

    // A partial-caching (PB) proxy stores exactly the bandwidth deficit.
    let mut pb = CacheEngine::new(200e6, PartialBandwidth::new())?;
    pb.on_access(&clip, bandwidth);
    let cached = pb.cached_bytes(clip.key);
    println!("PB cached prefix   : {:>10.1} MB", cached / 1e6);
    println!(
        "delay with PB cache: {:>10.1} s",
        clip.service_delay(bandwidth, cached)
    );
    println!(
        "quality with PB    : {:>10.2}",
        clip.quality(bandwidth, cached)
    );
    println!();

    // A frequency-only (IF) cache of the same size would have stored the
    // whole object — or, with less space than the object, nothing at all.
    let mut integral = CacheEngine::new(50e6, IntegralFrequency::new())?;
    integral.on_access(&clip, bandwidth);
    println!(
        "IF (50 MB cache)   : {:>10.1} MB cached — integral caching cannot help here",
        integral.cached_bytes(clip.key) / 1e6
    );
    let mut partial_small = CacheEngine::new(50e6, PartialBandwidth::new())?;
    partial_small.on_access(&clip, bandwidth);
    let small_prefix = partial_small.cached_bytes(clip.key);
    println!(
        "PB (50 MB cache)   : {:>10.1} MB cached, delay {:.1} s",
        small_prefix / 1e6,
        clip.service_delay(bandwidth, small_prefix)
    );
    Ok(())
}
